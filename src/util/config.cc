#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace whitefi {
namespace {

std::string Trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

ConfigFile ConfigFile::Parse(std::istream& in) {
  ConfigFile config;
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments (full-line or trailing).
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') {
        throw std::runtime_error("config line " + std::to_string(line_number) +
                                 ": unterminated section header");
      }
      section = Trim(trimmed.substr(1, trimmed.size() - 2));
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(line_number) +
                               ": expected key = value");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(line_number) +
                               ": empty key");
    }
    config.values_[section.empty() ? key : section + "." + key] = value;
  }
  return config;
}

ConfigFile ConfigFile::ParseString(const std::string& text) {
  std::istringstream in(text);
  return Parse(in);
}

ConfigFile ConfigFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return Parse(in);
}

bool ConfigFile::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ConfigFile::Get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long ConfigFile::GetInt(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const long long value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("config key '" + key + "' is not an integer: " +
                             it->second);
  }
}

double ConfigFile::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("config key '" + key + "' is not a number: " +
                             it->second);
  }
}

bool ConfigFile::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = Lower(it->second);
  if (v == "true" || v == "yes" || v == "1") return true;
  if (v == "false" || v == "no" || v == "0") return false;
  throw std::runtime_error("config key '" + key + "' is not a boolean: " +
                           it->second);
}

std::vector<std::string> ConfigFile::GetList(const std::string& key) const {
  std::vector<std::string> items;
  const auto it = values_.find(key);
  if (it == values_.end()) return items;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string trimmed = Trim(item);
    if (!trimmed.empty()) items.push_back(trimmed);
  }
  return items;
}

std::vector<long long> ConfigFile::GetIntList(const std::string& key) const {
  std::vector<long long> values;
  for (const std::string& item : GetList(key)) {
    try {
      values.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw std::runtime_error("config key '" + key +
                               "' has a non-integer item: " + item);
    }
  }
  return values;
}

std::vector<std::string> ConfigFile::Keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace whitefi
