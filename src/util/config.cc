#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace whitefi {
namespace {

std::string Trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string ConfigError::Format(const std::string& message,
                                const std::string& path, int line) {
  std::string where = path.empty() ? "config" : path;
  if (line > 0) where += " line " + std::to_string(line);
  return where + ": " + message;
}

ConfigFile ConfigFile::Parse(std::istream& in) { return Parse(in, ""); }

ConfigFile ConfigFile::Parse(std::istream& in, const std::string& source) {
  ConfigFile config;
  config.source_ = source;
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments (full-line or trailing).
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') {
        throw ConfigError("unterminated section header", config.source_,
                          line_number);
      }
      section = Trim(trimmed.substr(1, trimmed.size() - 2));
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("expected key = value", config.source_, line_number);
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw ConfigError("empty key", config.source_, line_number);
    }
    config.values_[section.empty() ? key : section + "." + key] =
        Entry{value, line_number};
  }
  return config;
}

ConfigFile ConfigFile::ParseString(const std::string& text) {
  std::istringstream in(text);
  return Parse(in);
}

ConfigFile ConfigFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file", path, 0);
  return Parse(in, path);
}

bool ConfigFile::Has(const std::string& key) const {
  const bool present = values_.count(key) > 0;
  if (present) consumed_.insert(key);
  return present;
}

std::string ConfigFile::Get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return it->second.value;
}

long long ConfigFile::GetInt(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  try {
    std::size_t used = 0;
    const long long value = std::stoll(it->second.value, &used);
    if (used != it->second.value.size()) {
      throw std::invalid_argument(it->second.value);
    }
    return value;
  } catch (const std::exception&) {
    throw ConfigError(
        "key '" + key + "' is not an integer: " + it->second.value, source_,
        it->second.line);
  }
}

double ConfigFile::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second.value, &used);
    if (used != it->second.value.size()) {
      throw std::invalid_argument(it->second.value);
    }
    return value;
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' is not a number: " + it->second.value,
                      source_, it->second.line);
  }
}

bool ConfigFile::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  const std::string v = Lower(it->second.value);
  if (v == "true" || v == "yes" || v == "1") return true;
  if (v == "false" || v == "no" || v == "0") return false;
  throw ConfigError("key '" + key + "' is not a boolean: " + it->second.value,
                    source_, it->second.line);
}

std::vector<std::string> ConfigFile::GetList(const std::string& key) const {
  std::vector<std::string> items;
  const auto it = values_.find(key);
  if (it == values_.end()) return items;
  consumed_.insert(key);
  std::istringstream in(it->second.value);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string trimmed = Trim(item);
    if (!trimmed.empty()) items.push_back(trimmed);
  }
  return items;
}

std::vector<long long> ConfigFile::GetIntList(const std::string& key) const {
  std::vector<long long> values;
  for (const std::string& item : GetList(key)) {
    try {
      values.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw ConfigError("key '" + key + "' has a non-integer item: " + item,
                        source_, LineOf(key));
    }
  }
  return values;
}

std::vector<std::string> ConfigFile::Keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, entry] : values_) keys.push_back(key);
  return keys;
}

std::vector<std::string> ConfigFile::UnconsumedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, entry] : values_) {
    if (consumed_.count(key) == 0) keys.push_back(key);
  }
  return keys;
}

int ConfigFile::LineOf(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? 0 : it->second.line;
}

}  // namespace whitefi
