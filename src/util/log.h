// Minimal leveled logger.
//
// Logging is off by default (level Warn) so benchmark output stays clean;
// examples raise the level to show protocol traces.
#pragma once

#include <sstream>
#include <string>

namespace whitefi {

/// Log severity, ordered.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

/// Emits one line to stderr if `level` passes the global filter.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style one-shot log statement; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace whitefi

#define WHITEFI_LOG(level) ::whitefi::internal::LogStream(level)
#define WHITEFI_LOG_INFO WHITEFI_LOG(::whitefi::LogLevel::kInfo)
#define WHITEFI_LOG_DEBUG WHITEFI_LOG(::whitefi::LogLevel::kDebug)
#define WHITEFI_LOG_WARN WHITEFI_LOG(::whitefi::LogLevel::kWarn)
