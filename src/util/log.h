// Minimal leveled logger.
//
// Logging is off by default (level Warn) so benchmark output stays clean;
// examples raise the level to show protocol traces.
//
// Statements below the global filter cost one relaxed atomic load: the
// WHITEFI_LOG* macros short-circuit before the stream (and its operands)
// are ever evaluated, so disabled log lines do no string formatting.
//
// Lines can carry a simulated-time stamp and a component tag so they can
// be correlated with the structured event trace (src/obs/event_trace.h):
//
//   [INFO  12.304000s core/ap3] AP 3 now on (ch23, 20MHz)
//
// The time stamp appears once a time source is installed (the World does
// this for its simulator clock); the tag comes from WHITEFI_LOG_TAGGED.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace whitefi {

/// Log severity, ordered.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace internal

/// True iff a statement at `level` passes the global filter.  Cheap enough
/// to guard every log site (one relaxed load).
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

/// Installs a simulated-time source: every subsequent log line is stamped
/// with `now_seconds()`.  `owner` is an opaque token so a World being
/// destroyed only clears the source it installed itself (scenario harness
/// code creates worlds back to back).
void SetLogTimeSource(const void* owner, std::function<double()> now_seconds);

/// Clears the time source iff `owner` installed the current one.
void ClearLogTimeSource(const void* owner);

/// Emits one line to stderr if `level` passes the global filter; `tag` (a
/// component label like "core/ap3") may be empty.
void LogLine(LogLevel level, const std::string& tag,
             const std::string& message);

/// Back-compat overload without a component tag.
inline void LogLine(LogLevel level, const std::string& message) {
  LogLine(level, std::string(), message);
}

namespace internal {

/// Stream-style one-shot log statement; emits on destruction.  Only ever
/// constructed when the level passes the filter (see WHITEFI_LOG).
class LogStream {
 public:
  explicit LogStream(LogLevel level, std::string tag = {})
      : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { LogLine(level_, tag_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};

/// Swallows the LogStream expression in the enabled branch of the macro's
/// ternary so both branches have type void.  operator& binds looser than
/// operator<<, so the whole chained stream is its operand.
struct LogVoidify {
  void operator&(LogStream&) {}
};

}  // namespace internal
}  // namespace whitefi

// The ternary guard means the stream, and every operand of `<<` after it,
// is not evaluated at all when the level is filtered out.
#define WHITEFI_LOG_TAGGED(level, tag)               \
  !::whitefi::LogEnabled(level)                      \
      ? (void)0                                      \
      : ::whitefi::internal::LogVoidify() &          \
            ::whitefi::internal::LogStream(level, tag)
#define WHITEFI_LOG(level) WHITEFI_LOG_TAGGED(level, ::std::string())
#define WHITEFI_LOG_TRACE WHITEFI_LOG(::whitefi::LogLevel::kTrace)
#define WHITEFI_LOG_DEBUG WHITEFI_LOG(::whitefi::LogLevel::kDebug)
#define WHITEFI_LOG_INFO WHITEFI_LOG(::whitefi::LogLevel::kInfo)
#define WHITEFI_LOG_WARN WHITEFI_LOG(::whitefi::LogLevel::kWarn)
#define WHITEFI_LOG_ERROR WHITEFI_LOG(::whitefi::LogLevel::kError)
