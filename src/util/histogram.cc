#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace whitefi {

IntHistogram::IntHistogram(int max_value) {
  if (max_value < 0) throw std::invalid_argument("max_value must be >= 0");
  bins_.assign(static_cast<std::size_t>(max_value) + 1, 0);
}

void IntHistogram::Add(int value) { AddN(value, 1); }

void IntHistogram::AddN(int value, std::size_t count) {
  const int clamped = std::clamp(value, 0, MaxValue());
  bins_[static_cast<std::size_t>(clamped)] += count;
  total_ += count;
}

std::size_t IntHistogram::CountOf(int value) const {
  if (value < 0 || value > MaxValue()) return 0;
  return bins_[static_cast<std::size_t>(value)];
}

double IntHistogram::Fraction(int value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(CountOf(value)) / static_cast<double>(total_);
}

int IntHistogram::MaxObserved() const {
  for (int v = MaxValue(); v >= 0; --v) {
    if (bins_[static_cast<std::size_t>(v)] > 0) return v;
  }
  return -1;
}

void IntHistogram::Merge(const IntHistogram& other) {
  if (other.bins_.size() != bins_.size()) {
    throw std::invalid_argument("histogram ranges differ");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
}

std::string IntHistogram::ToString(const std::string& value_label) const {
  std::ostringstream os;
  std::size_t max_count = 1;
  for (std::size_t c : bins_) max_count = std::max(max_count, c);
  for (int v = 0; v <= MaxValue(); ++v) {
    const std::size_t c = CountOf(v);
    if (c == 0) continue;
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(c) / static_cast<double>(max_count) + 0.5);
    os << value_label << " " << v << " : " << std::string(bar, '#') << " "
       << c << "\n";
  }
  return os.str();
}

DoubleHistogram::DoubleHistogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(num_bins)) {
  if (num_bins == 0 || hi <= lo) {
    throw std::invalid_argument("bad histogram parameters");
  }
  bins_.assign(num_bins, 0);
}

void DoubleHistogram::Add(double value) {
  auto idx = static_cast<long>((value - lo_) / width_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double DoubleHistogram::BinCenter(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::size_t ExpHistogram::BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // Also catches NaN.
  const int exponent = std::ilogb(value);
  return std::min<std::size_t>(static_cast<std::size_t>(exponent) + 1,
                               kBuckets - 1);
}

void ExpHistogram::Add(double value) {
  const double v = std::isnan(value) ? 0.0 : std::max(value, 0.0);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++bins_[BucketOf(v)];
  ++count_;
  sum_ += v;
}

double ExpHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  std::size_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bins_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      return std::clamp(std::midpoint(lo, hi), min_, max_);
    }
  }
  return max_;
}

std::vector<ExpHistogram::BucketCount> ExpHistogram::NonEmptyBuckets() const {
  std::vector<BucketCount> buckets;
  for (int i = 0; i < kBuckets; ++i) {
    const std::size_t count = bins_[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
    const double hi = std::ldexp(1.0, i);
    buckets.push_back({lo, hi, count});
  }
  return buckets;
}

void ExpHistogram::Merge(const ExpHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string ExpHistogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_;
  if (count_ > 0) {
    os << " mean=" << Mean() << " min=" << Min() << " p50=" << Percentile(50)
       << " p90=" << Percentile(90) << " p99=" << Percentile(99)
       << " max=" << Max();
  }
  return os.str();
}

}  // namespace whitefi
