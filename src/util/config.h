// A small INI-style configuration reader.
//
// The paper's QualNet methodology has "every node read its initial
// spectrum map from a configuration file"; this parser backs the same
// workflow here — scenario files for the CLI tool and the bench harnesses.
//
// Format:
//   # comment            (also ';')
//   key = value
//   [section]            (keys below become "section.key")
//   list = a, b, c
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace whitefi {

/// Parsed key/value configuration.
class ConfigFile {
 public:
  /// Parses from a stream.  Throws std::runtime_error on malformed lines
  /// (anything that is not blank, comment, section, or key = value).
  static ConfigFile Parse(std::istream& in);

  /// Parses from a string.
  static ConfigFile ParseString(const std::string& text);

  /// Loads and parses a file.  Throws std::runtime_error if unreadable.
  static ConfigFile Load(const std::string& path);

  /// True iff `key` is present.
  bool Has(const std::string& key) const;

  /// String value, or `fallback` when absent.
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const;

  /// Integer value; throws std::runtime_error on non-numeric content.
  long long GetInt(const std::string& key, long long fallback = 0) const;

  /// Double value; throws on non-numeric content.
  double GetDouble(const std::string& key, double fallback = 0.0) const;

  /// Boolean: true/false/yes/no/1/0 (case-insensitive); throws otherwise.
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Comma-separated list, items trimmed; empty when absent.
  std::vector<std::string> GetList(const std::string& key) const;

  /// Comma-separated integers.
  std::vector<long long> GetIntList(const std::string& key) const;

  /// All keys in insertion-independent (sorted) order.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace whitefi
