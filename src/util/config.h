// A small INI-style configuration reader.
//
// The paper's QualNet methodology has "every node read its initial
// spectrum map from a configuration file"; this parser backs the same
// workflow here — scenario files for the CLI tool and the bench harnesses.
//
// Format:
//   # comment            (also ';')
//   key = value
//   [section]            (keys below become "section.key")
//   list = a, b, c
//
// Every accessor (Has / Get*) marks its key as consumed; after loading a
// scenario, `UnconsumedKeys()` lists the keys no reader ever looked at —
// i.e. typos and stale options — so callers can warn about them (or, under
// a strict flag, reject the file).  Parse and conversion failures throw
// `ConfigError`, which carries the source path and line number.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace whitefi {

/// A configuration problem: malformed syntax, or a value of the wrong
/// type.  `path()` is empty for configs parsed from strings/streams;
/// `line()` is 0 when no line is attributable (e.g. unreadable file).
class ConfigError : public std::runtime_error {
 public:
  ConfigError(const std::string& message, std::string path, int line)
      : std::runtime_error(Format(message, path, line)),
        path_(std::move(path)),
        line_(line) {}

  const std::string& path() const { return path_; }
  int line() const { return line_; }

 private:
  static std::string Format(const std::string& message,
                            const std::string& path, int line);

  std::string path_;
  int line_;
};

/// Parsed key/value configuration.
class ConfigFile {
 public:
  /// Parses from a stream.  Throws ConfigError on malformed lines
  /// (anything that is not blank, comment, section, or key = value).
  static ConfigFile Parse(std::istream& in);

  /// Parses from a string.
  static ConfigFile ParseString(const std::string& text);

  /// Loads and parses a file.  Throws ConfigError if unreadable; parse
  /// errors carry the file path.
  static ConfigFile Load(const std::string& path);

  /// True iff `key` is present.
  bool Has(const std::string& key) const;

  /// String value, or `fallback` when absent.
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const;

  /// Integer value; throws ConfigError on non-numeric content.
  long long GetInt(const std::string& key, long long fallback = 0) const;

  /// Double value; throws on non-numeric content.
  double GetDouble(const std::string& key, double fallback = 0.0) const;

  /// Boolean: true/false/yes/no/1/0 (case-insensitive); throws otherwise.
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Comma-separated list, items trimmed; empty when absent.
  std::vector<std::string> GetList(const std::string& key) const;

  /// Comma-separated integers.
  std::vector<long long> GetIntList(const std::string& key) const;

  /// All keys in insertion-independent (sorted) order.
  std::vector<std::string> Keys() const;

  /// Keys present in the file that no accessor has read yet, sorted.
  /// Call after the scenario loader has consumed everything it knows
  /// about: what remains is typos and stale options.
  std::vector<std::string> UnconsumedKeys() const;

  /// Source line of `key` (0 when absent).
  int LineOf(const std::string& key) const;

  /// Source path ("" for string/stream parses).
  const std::string& source() const { return source_; }

 private:
  static ConfigFile Parse(std::istream& in, const std::string& source);

  struct Entry {
    std::string value;
    int line = 0;
  };

  std::map<std::string, Entry> values_;
  std::string source_;
  /// Accessors are logically const; consumption tracking is bookkeeping.
  mutable std::set<std::string> consumed_;
};

}  // namespace whitefi
