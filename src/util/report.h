// Table and CSV rendering for the benchmark harnesses.
//
// Every bench binary regenerating a paper table/figure prints its rows
// through `Table` so output is aligned and diff-friendly, and can also emit
// machine-readable CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace whitefi {

/// An aligned plain-text table builder.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Renders with padded columns, a header underline, and a trailing newline.
  std::string ToString() const;

  /// Renders as CSV (no padding).
  std::string ToCsv() const;

  /// Convenience: prints ToString() to the stream.
  void Print(std::ostream& os) const;

  /// Number of data rows.
  std::size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 2);

/// Formats a fraction in [0,1] as a percentage with one decimal.
std::string FormatPercent(double fraction);

}  // namespace whitefi
