// Deterministic random number generation.
//
// Every stochastic component in this repository draws from an explicitly
// seeded `Rng` so that experiments are reproducible run-to-run.  `Rng`
// wraps a 64-bit Mersenne twister and adds the distributions the WhiteFi
// models need (Rayleigh fading amplitudes, exponential backoff jitter,
// Bernoulli map flips, ...).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace whitefi {

/// Derives the seed for a named substream from a root seed.
///
/// Every stochastic component (fault injector, background traffic, fuzz
/// generator, ...) must seed from `DeriveSeed(root, "component")` rather
/// than reusing the root seed raw or with ad-hoc arithmetic: two
/// components that accidentally share a stream become correlated, and a
/// draw added to one silently perturbs the other.  The label is hashed
/// (FNV-1a) and mixed with the root through SplitMix64, so distinct
/// labels yield decorrelated streams and the mapping is stable across
/// platforms and releases.
std::uint64_t DeriveSeed(std::uint64_t root, std::string_view label);

/// A seedable random number generator with convenience distributions.
///
/// `Rng` is cheap to copy-construct via `Fork()` which derives an
/// independent child stream; use one stream per logical component so that
/// adding randomness to one component does not perturb another.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child generator.  Successive calls produce
  /// distinct streams.
  Rng Fork();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Rayleigh-distributed amplitude with scale `sigma`.
  ///
  /// The magnitude of a complex Gaussian (I,Q) sample — the model for an
  /// OFDM signal envelope — is Rayleigh distributed.
  double Rayleigh(double sigma);

  /// Fills `out` with Rayleigh draws of scale `sigma`: byte-identical to
  /// calling Rayleigh(sigma) once per element, but in one pass over the
  /// engine (the bulk-noise fast path for trace synthesis).
  void FillRayleigh(double sigma, std::span<double> out);

  /// Exponential with the given mean (mean = 1/lambda).
  double Exponential(double mean);

  /// Picks a uniformly random element index from a non-empty container size.
  std::size_t Index(std::size_t size);

  /// Picks a uniformly random element from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  /// Access to the underlying engine for <random> interop.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t fork_counter_ = 0;
  std::uint64_t seed_;
};

}  // namespace whitefi
