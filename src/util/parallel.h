// Deterministic parallel trial runner.
//
// The paper-reproduction benches run hundreds of independent simulation
// trials (per-seed scenario runs, OPT candidate sweeps, locale placements).
// Each trial is a pure function of its index — it derives its own Rng and
// shares no mutable state — so trials can run on any thread in any order
// as long as results are COLLECTED in index order.  That is the
// determinism contract of this module:
//
//   * callers fork one Rng (or compute one seed) per trial index BEFORE
//     dispatch, serially, so the random streams are independent of the
//     job count and of scheduling;
//   * ParallelMap stores each result at its index and returns the vector
//     in index order; all aggregation and printing happens serially on
//     the caller's thread afterwards;
//   * jobs <= 1 runs every trial inline on the calling thread, in index
//     order, with no pool at all — the serial reference path.
//
// Under that contract the output of any `--jobs N` is byte-identical to
// `--jobs 1`; only the wall clock changes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace whitefi {

/// A fixed-size worker pool dispatching indexed tasks.
///
/// Workers are started once and reused across Run() calls (trial loops
/// call Run per sweep); Run blocks until every index has been processed.
/// A pool of size <= 1 executes inline and starts no threads.
class ThreadPool {
 public:
  /// Starts `jobs - 1` workers (the calling thread participates in Run).
  explicit ThreadPool(int jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(i) exactly once for every i in [0, n), distributing
  /// indices across the workers, and blocks until all are done.  The
  /// first exception thrown by any task is rethrown on the caller after
  /// the batch drains.  With jobs <= 1 this is a plain serial loop.
  void Run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The configured parallelism (>= 1).
  int jobs() const { return jobs_; }

 private:
  void WorkerLoop();
  /// Pulls indices from the current batch until it is exhausted.
  void DrainBatch();

  int jobs_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t batch_size_ = 0;
  std::size_t next_index_ = 0;
  std::size_t in_flight_ = 0;    ///< Indices claimed but not yet finished.
  std::uint64_t generation_ = 0; ///< Bumped per batch to wake workers.
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// One-shot convenience: runs fn(i) for i in [0, n) at the given job
/// count.  jobs <= 1 is a serial loop with no pool construction.
void ParallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Maps i -> fn(i) for i in [0, n) and returns the results in index
/// order regardless of job count or scheduling.
template <typename Fn>
auto ParallelMap(int jobs, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  ParallelFor(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Hardware thread count (>= 1) — the natural `--jobs $(nproc)` default.
int HardwareJobs();

/// Parses a `--jobs` value: positive integer, or 0 meaning HardwareJobs().
/// Throws std::invalid_argument on garbage.
int ParseJobs(const char* value);

}  // namespace whitefi
