// AP discovery: L-SIFT, J-SIFT, and the non-SIFT baseline (paper 4.2.2).
//
// A WhiteFi AP may beacon on any of 84 (F, W) combinations; a client must
// find it.  The non-SIFT baseline retunes to every combination and listens
// one beacon period each.  SIFT changes the game: a single scan of one UHF
// channel detects any WhiteFi transmitter whose channel overlaps it and
// reveals the transmitter's exact width (with center ambiguity +/- W/2).
//
//  * L-SIFT scans free UHF channels bottom-up; the first detection pins
//    the center exactly (the AP's lowest spanned channel was just hit).
//    Expected scans: NC / 2.
//  * J-SIFT (Algorithm 1) staggers: widest stride first (every 5th
//    channel for 20 MHz, then every 3rd for 10 MHz, then the rest),
//    skipping channels already scanned, then resolves the center
//    ambiguity by attempting beacon decodes on the candidate centers
//    ("endgame").  Expected scans: (NC + 2^(NW-1) + (NW-1)/2) / NW.
//
// J-SIFT wins once the searchable white space exceeds ~10 UHF channels;
// below that L-SIFT's lack of an endgame makes it cheaper (Figure 8).
#pragma once

#include <optional>

#include "sift/matcher.h"
#include "spectrum/spectrum_map.h"
#include "util/rng.h"
#include "util/units.h"

namespace whitefi {

/// Time costs of the scan primitives.
struct DiscoveryParams {
  /// One SIFT dwell on a UHF channel.  Must cover a beacon interval
  /// (100 ms) so at least one beacon+CTS pair crosses the window.
  Us sift_scan_time = 100.0 * kMillisecond;
  /// One tune-and-listen attempt on a specific (F, W): PLL retune plus a
  /// beacon interval.
  Us beacon_listen_time = 100.0 * kMillisecond;
  /// Baseline candidate pruning.  When true the baseline skips (F, W)
  /// candidates whose span covers a channel the *client* observes as
  /// occupied — the assumption behind the paper's "all algorithms equal at
  /// one free channel" point (Figure 8).  When false it tries every width
  /// at every free center (the paper's ~NC*NW/2 cost model): under spatial
  /// variation the AP's map may differ from the client's, so a span
  /// blocked at the client could still host the AP.
  bool baseline_skips_blocked_spans = true;
  /// SIFT scans can miss in noisy environments (false negatives, paper
  /// 4.2.1); the algorithms repeat their full pass up to this many times.
  /// The paper: "the discovery algorithm will continue to work as long as
  /// we can detect even a single packet".
  int max_rounds = 3;
  ChannelEnumerationOptions enumeration;
};

/// Outcome of a discovery run.
struct DiscoveryResult {
  bool found = false;
  Channel channel;         ///< The AP's channel, when found.
  int sift_scans = 0;      ///< SIFT dwells performed.
  int beacon_listens = 0;  ///< (F, W) tune-and-listen attempts.
  Us elapsed = 0.0;        ///< Total time spent.
};

/// What the discovery algorithms probe — either an analytic model or a
/// full simulation can stand behind this interface.
class ScanEnvironment {
 public:
  virtual ~ScanEnvironment() = default;

  /// SIFT dwell centered on UHF channel `c`: reports a transmitter whose
  /// channel overlaps `c` (exact width, center ambiguous by +/- W/2), or
  /// nothing.
  virtual std::optional<SiftDetection> SiftScan(UhfIndex c) = 0;

  /// Tunes to `channel` and listens one beacon period; true iff an AP
  /// beacon decoded (i.e. the AP uses exactly this channel).
  virtual bool TryDecodeBeacon(const Channel& channel) = 0;
};

/// Analytic environment: one AP on a known channel; SIFT scans may be
/// given a false-negative probability to model noisy conditions.
class AnalyticScanEnvironment : public ScanEnvironment {
 public:
  explicit AnalyticScanEnvironment(Channel ap_channel,
                                   double miss_probability = 0.0,
                                   Rng* rng = nullptr);

  std::optional<SiftDetection> SiftScan(UhfIndex c) override;
  bool TryDecodeBeacon(const Channel& channel) override;

 private:
  Channel ap_;
  double miss_probability_;
  Rng* rng_;
};

/// Linear SIFT discovery: scan free channels bottom-up.
DiscoveryResult LSiftDiscover(ScanEnvironment& env,
                              const SpectrumMap& client_map,
                              const DiscoveryParams& params = {});

/// Jump SIFT discovery: staggered widest-first scan + center endgame
/// (paper Algorithm 1).
DiscoveryResult JSiftDiscover(ScanEnvironment& env,
                              const SpectrumMap& client_map,
                              const DiscoveryParams& params = {});

/// Non-SIFT baseline: tune to every usable (F, W) in turn.
DiscoveryResult BaselineDiscover(ScanEnvironment& env,
                                 const SpectrumMap& client_map,
                                 const DiscoveryParams& params = {});

/// The paper's expected scan counts (for NC contiguous channels).
double ExpectedLSiftScans(int nc);
double ExpectedJSiftScans(int nc, int nw = kNumWidths);
double ExpectedBaselineScans(int nc, int nw = kNumWidths);

}  // namespace whitefi
