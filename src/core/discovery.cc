#include "core/discovery.h"

#include <algorithm>
#include <cmath>

namespace whitefi {

AnalyticScanEnvironment::AnalyticScanEnvironment(Channel ap_channel,
                                                 double miss_probability,
                                                 Rng* rng)
    : ap_(ap_channel), miss_probability_(miss_probability), rng_(rng) {}

std::optional<SiftDetection> AnalyticScanEnvironment::SiftScan(UhfIndex c) {
  if (!ap_.Contains(c)) return std::nullopt;
  if (miss_probability_ > 0.0 && rng_ != nullptr &&
      rng_->Bernoulli(miss_probability_)) {
    return std::nullopt;
  }
  return SiftDetection{ap_.width, 1};
}

bool AnalyticScanEnvironment::TryDecodeBeacon(const Channel& channel) {
  return channel == ap_;
}

namespace {

DiscoveryResult LSiftDiscoverOnce(ScanEnvironment& env,
                                  const SpectrumMap& client_map,
                                  const DiscoveryParams& params) {
  DiscoveryResult result;
  // Scan free channels from the lowest frequency up.  The first overlap
  // with the AP's span is the AP's lowest spanned channel, so the center
  // is immediately known: Fc = Fs + E.
  for (UhfIndex c : client_map.FreeIndices()) {
    ++result.sift_scans;
    result.elapsed += params.sift_scan_time;
    const auto detection = env.SiftScan(c);
    if (!detection.has_value()) continue;
    result.found = true;
    result.channel = Channel{c + HalfSpan(detection->width), detection->width};
    return result;
  }
  return result;
}

/// Scan positions for stride `step` within one free fragment: every
/// `step`-th channel starting at the fragment's low end, so any channel of
/// span `step` inside the fragment covers at least one scanned position.
std::vector<UhfIndex> StridePositions(const Fragment& fragment, int step) {
  std::vector<UhfIndex> positions;
  for (int k = 0; k < fragment.length; k += step) {
    positions.push_back(fragment.start + k);
  }
  return positions;
}

DiscoveryResult JSiftDiscoverOnce(ScanEnvironment& env,
                                  const SpectrumMap& client_map,
                                  const DiscoveryParams& params) {
  DiscoveryResult result;
  std::vector<bool> scanned(static_cast<std::size_t>(kNumUhfChannels), false);
  const std::vector<Fragment> fragments =
      client_map.FreeFragments(params.enumeration.respect_channel37_gap);

  std::optional<SiftDetection> detection;
  UhfIndex hit_channel = 0;

  // Phase 1: staggered scan, widest width first (paper Algorithm 1).
  for (int w = kNumWidths - 1; w >= 0 && !detection.has_value(); --w) {
    const int step = SpanChannels(kAllWidths[static_cast<std::size_t>(w)]);
    for (const Fragment& fragment : fragments) {
      if (detection.has_value()) break;
      for (UhfIndex c : StridePositions(fragment, step)) {
        if (scanned[static_cast<std::size_t>(c)]) continue;
        scanned[static_cast<std::size_t>(c)] = true;
        ++result.sift_scans;
        result.elapsed += params.sift_scan_time;
        detection = env.SiftScan(c);
        if (detection.has_value()) {
          hit_channel = c;
          break;
        }
      }
    }
  }
  if (!detection.has_value()) return result;

  // Phase 2 ("endgame"): the center is anywhere within +/- HalfSpan of the
  // hit; try candidate centers with real beacon decodes.  A 5 MHz hit has
  // no ambiguity.
  const ChannelWidth width = detection->width;
  const int h = HalfSpan(width);
  if (h == 0) {
    result.found = true;
    result.channel = Channel{hit_channel, width};
    return result;
  }
  for (int k = -h; k <= h; ++k) {
    const Channel candidate{hit_channel + k, width};
    if (!candidate.IsValid()) continue;
    if (!client_map.CanUse(candidate,
                           params.enumeration.respect_channel37_gap)) {
      continue;
    }
    ++result.beacon_listens;
    result.elapsed += params.beacon_listen_time;
    if (env.TryDecodeBeacon(candidate)) {
      result.found = true;
      result.channel = candidate;
      return result;
    }
  }
  return result;
}

DiscoveryResult BaselineDiscoverOnce(ScanEnvironment& env,
                                     const SpectrumMap& client_map,
                                     const DiscoveryParams& params) {
  DiscoveryResult result;
  std::vector<Channel> candidates;
  if (params.baseline_skips_blocked_spans) {
    candidates = client_map.UsableChannels(params.enumeration);
  } else {
    // Center-major: visit channels bottom-up trying every width at each —
    // the ordering behind the paper's expected cost of NC * NW / 2 scans.
    for (UhfIndex center = 0; center < kNumUhfChannels; ++center) {
      if (!client_map.Free(center)) continue;
      for (ChannelWidth w : kAllWidths) {
        const Channel candidate{center, w};
        if (!candidate.IsValid()) continue;
        if (params.enumeration.respect_channel37_gap &&
            !candidate.IsPhysicallyContiguous()) {
          continue;
        }
        candidates.push_back(candidate);
      }
    }
  }
  for (const Channel& candidate : candidates) {
    ++result.beacon_listens;
    result.elapsed += params.beacon_listen_time;
    if (env.TryDecodeBeacon(candidate)) {
      result.found = true;
      result.channel = candidate;
      return result;
    }
  }
  return result;
}


/// Repeats one algorithm pass up to params.max_rounds times, accumulating
/// costs, to ride out SIFT false negatives.
template <typename Algorithm>
DiscoveryResult DiscoverWithRetries(Algorithm&& once,
                                    const DiscoveryParams& params) {
  DiscoveryResult total;
  const int rounds = std::max(params.max_rounds, 1);
  for (int round = 0; round < rounds; ++round) {
    DiscoveryResult pass = once();
    total.sift_scans += pass.sift_scans;
    total.beacon_listens += pass.beacon_listens;
    total.elapsed += pass.elapsed;
    if (pass.found) {
      total.found = true;
      total.channel = pass.channel;
      break;
    }
  }
  return total;
}

}  // namespace

DiscoveryResult LSiftDiscover(ScanEnvironment& env,
                              const SpectrumMap& client_map,
                              const DiscoveryParams& params) {
  return DiscoverWithRetries(
      [&] { return LSiftDiscoverOnce(env, client_map, params); }, params);
}

DiscoveryResult JSiftDiscover(ScanEnvironment& env,
                              const SpectrumMap& client_map,
                              const DiscoveryParams& params) {
  return DiscoverWithRetries(
      [&] { return JSiftDiscoverOnce(env, client_map, params); }, params);
}

DiscoveryResult BaselineDiscover(ScanEnvironment& env,
                                 const SpectrumMap& client_map,
                                 const DiscoveryParams& params) {
  return DiscoverWithRetries(
      [&] { return BaselineDiscoverOnce(env, client_map, params); }, params);
}

double ExpectedLSiftScans(int nc) { return static_cast<double>(nc) / 2.0; }

double ExpectedJSiftScans(int nc, int nw) {
  // Paper Section 4.2.2: (NC + 2^(NW-1) + (NW-1)/2) / NW.
  return (static_cast<double>(nc) + std::pow(2.0, nw - 1) +
          (static_cast<double>(nw) - 1.0) / 2.0) /
         static_cast<double>(nw);
}

double ExpectedBaselineScans(int nc, int nw) {
  return static_cast<double>(nc) * static_cast<double>(nw) / 2.0;
}

}  // namespace whitefi
