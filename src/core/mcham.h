// MCham — the multichannel airtime metric (paper Section 4.1).
//
// For a UHF channel c observed at node n with busy airtime A_c and B_c
// contending foreign APs, the expected share is
//
//     rho_n(c) = max(1 - A_c, 1 / (B_c + 1))            (paper Eq. 1)
//
// — the residual airtime when the channel is mostly free, but never less
// than the fair CSMA share when it is saturated by B_c other APs.  For a
// WhiteFi channel (F, W) spanning several UHF channels, the shares
// multiply (traffic on any spanned channel contends with the whole wide
// channel) and scale by the capacity ratio:
//
//     MCham_n(F, W) = (W / 5 MHz) * prod_{c in (F,W)} rho_n(c)   (Eq. 2)
//
// The AP selects the channel maximizing N * MCham_AP + sum_n MCham_n,
// weighting its own (downlink-heavy) view by the client count N.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "sift/airtime.h"
#include "spectrum/channel.h"
#include "spectrum/spectrum_map.h"

namespace whitefi {

/// Expected share of one UHF channel (paper Eq. 1).
double Rho(const ChannelObservation& obs);

/// MCham of channel `channel` under one node's band observation (Eq. 2).
/// Returns 0 if any spanned UHF channel is incumbent-occupied, invalid, or
/// out of range — incumbent channels have undefined airtime and may not be
/// used at all.
double MCham(const Channel& channel, const BandObservation& observation);

/// The AP's channel-selection objective:
///   N * MCham_AP(F,W) + sum over clients of MCham_n(F,W)
/// where N = number of clients.  With no clients this reduces to the AP's
/// own MCham.
double ApDecisionMetric(const Channel& channel,
                        const BandObservation& ap_observation,
                        std::span<const BandObservation> client_observations);

/// MCham of an entirely idle channel: W / 5 MHz (1, 2 or 4) — the optimal
/// capacity reference used throughout the paper's examples.
double IdleMCham(ChannelWidth width);

/// Single-scan MCham evaluator for one BandObservation.
///
/// The assigner evaluates all 84 candidate (F, W) channels against every
/// observation; the naive loop re-walks each candidate's [Low, High] span,
/// recomputing Rho per spanned channel per candidate.  This precomputes,
/// in ONE pass over the band, (a) Rho for every UHF channel, (b) an
/// incumbent prefix count (O(1) "any incumbent in [lo, hi]?"), and (c)
/// left-associated window products of Rho for every width's span, so each
/// candidate is served in O(1).
///
/// Bit-equality contract (pinned in tests/core_mcham_test.cc): the window
/// products are built in the exact association order of MCham's running
/// `product *= Rho(...)` loop, so `MChamScan(obs).Evaluate(ch)` returns a
/// double bit-identical to `MCham(ch, obs)` for every valid channel.
class MChamScan {
 public:
  explicit MChamScan(const BandObservation& observation);

  /// MCham of `channel` under the scanned observation (Eq. 2); bit-equal
  /// to MCham(channel, observation).
  double Evaluate(const Channel& channel) const;

 private:
  /// Incumbents among UHF channels [0, c) — "incumbent in [lo, hi]" is a
  /// prefix difference.
  std::array<int, kNumUhfChannels + 1> incumbent_prefix_{};
  /// prod_[w][low]: left-associated product of Rho over the
  /// SpanChannels(w) channels starting at `low`.
  std::array<std::array<double, kNumUhfChannels>, kNumWidths> prod_{};
};

/// The AP decision metric over one fixed set of observations, served from
/// per-observation MChamScans: build once, evaluate all 84 candidates.
/// Bit-equal to ApDecisionMetric per candidate (same accumulation order).
class ApDecisionScan {
 public:
  ApDecisionScan(const BandObservation& ap_observation,
                 std::span<const BandObservation> client_observations);

  /// Bit-equal to ApDecisionMetric(channel, ap, clients).
  double Evaluate(const Channel& channel) const;

 private:
  double weight_;  ///< max(#clients, 1), the AP-view weighting.
  MChamScan ap_;
  std::vector<MChamScan> clients_;
};

}  // namespace whitefi
