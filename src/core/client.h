// The WhiteFi client (paper Sections 4.1 and 4.3).
//
// A client tracks its AP through beacons, periodically reports its local
// spectrum map and airtime observations (the inputs to client-aware
// spectrum assignment), follows ChannelSwitch announcements, and — when it
// detects an incumbent on the operating channel or simply stops hearing
// the AP — vacates to the advertised backup channel and chirps until the
// network is reassembled.  If the backup channel itself hosts an
// incumbent, the client falls back to a deterministic secondary backup
// (the lowest incumbent-free UHF channel it observes) where the AP's
// sweeping scanner will eventually find its chirps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/scanner.h"
#include "sim/world.h"

namespace whitefi {

/// Client protocol parameters.
struct ClientParams {
  /// Declare disconnection after this long without hearing the AP.
  SimTime contact_timeout = 1 * kTicksPerSec;
  SimTime contact_check_interval = 250 * kTicksPerMs;
  SimTime chirp_interval = 150 * kTicksPerMs;
  SimTime report_interval = 2 * kTicksPerSec;
  /// Chirp frame size; its air time carries the SSID length-code.
  int chirp_bytes = 60;
  /// Chirp period jitter: the next chirp fires after
  /// chirp_interval * Uniform(1 - j, 1 + j).  Must lie in [0, 1).
  double chirp_jitter = 0.2;
  /// Hardening: grow the chirp period by `chirp_backoff_factor` per chirp
  /// up to `chirp_interval_max` (reset on every disconnect).  Off by
  /// default; fixed-interval chirping from several clients disconnected by
  /// the same incumbent contends in lockstep forever.
  bool chirp_backoff = false;
  double chirp_backoff_factor = 1.6;
  SimTime chirp_interval_max = 2 * kTicksPerSec;
  /// Hardening: when a disconnect outlives `reconnect_stage_timeout`,
  /// escalate the rendezvous point — backup, then secondary backup, then a
  /// full sweep cycling the observed free channels — instead of chirping
  /// on a possibly-dead backup channel forever.  Off by default.
  bool reconnect_escalation = false;
  SimTime reconnect_stage_timeout = 4 * kTicksPerSec;
  ScannerParams scanner;
};

/// Throws std::invalid_argument when any ClientParams field is out of
/// range (non-positive intervals/sizes, jitter outside [0, 1), backoff
/// factor <= 1, chirp_interval_max below chirp_interval).
void ValidateClientParams(const ClientParams& params);

/// A WhiteFi client.
class ClientNode : public Device {
 public:
  ClientNode(World& world, int id, const DeviceConfig& device_config,
             const ClientParams& params, Channel initial_main,
             Channel initial_backup, int ap_id);

  void Start() override;
  void OnIncumbentDetected(UhfIndex channel) override;

  /// True while the client believes it is connected.
  bool connected() const { return connected_; }

  /// Completed outage durations (disconnect -> reconnect), in ticks.
  const std::vector<SimTime>& outages() const { return outages_; }

  /// Number of disconnection events so far.
  int disconnect_events() const { return disconnects_; }

  Scanner& scanner() { return scanner_; }

 protected:
  void OnFrameReceived(const Frame& frame, Dbm rx_power) override;
  void OnChannelSwitched(const Channel& channel) override;

  /// Reconnect-escalation stage: 0 = backup, 1 = secondary backup,
  /// >= 2 = full-sweep hops.  Only advances when reconnect_escalation on.
  int reconnect_stage() const { return reconnect_stage_; }

 private:
  void CheckContact();
  void Chirp();
  void SendReport();
  /// `cause` labels the recovery span ("lost_contact" / "incumbent");
  /// `cause_flow` continues the triggering event's causal flow (e.g. the
  /// mic's) so the flight recorder can join recovery to root cause.
  void Disconnect(const char* cause = "lost_contact",
                  std::int64_t cause_flow = 0);
  void Reconnect();
  void SelectSecondaryBackup();
  void ScheduleEscalation();
  void EscalateReconnect();
  /// Closes the open recovery phase span (if any) and opens `name` as a
  /// child of the recovery span.
  void BeginRecoveryPhase(std::string_view name);

  ClientParams params_;
  Scanner scanner_;
  Rng rng_;
  Channel backup_;
  int ap_id_;
  bool connected_ = true;
  SimTime last_contact_ = 0;
  SimTime disconnected_at_ = 0;
  int disconnects_ = 0;
  std::vector<SimTime> outages_;
  /// Current chirp period (== chirp_interval unless backoff grew it).
  SimTime chirp_period_ = 0;
  int reconnect_stage_ = 0;
  /// Bumped on every connect/disconnect edge; stale escalation timers
  /// compare their captured epoch and die silently.
  std::uint64_t reconnect_epoch_ = 0;
  // Flight-recorder state for the in-progress recovery (0 = none).
  std::int64_t recovery_span_ = 0;
  std::int64_t recovery_flow_ = 0;
  std::string recovery_name_;
  std::int64_t phase_span_ = 0;
  std::string phase_name_;
};

}  // namespace whitefi
