// The WhiteFi client (paper Sections 4.1 and 4.3).
//
// A client tracks its AP through beacons, periodically reports its local
// spectrum map and airtime observations (the inputs to client-aware
// spectrum assignment), follows ChannelSwitch announcements, and — when it
// detects an incumbent on the operating channel or simply stops hearing
// the AP — vacates to the advertised backup channel and chirps until the
// network is reassembled.  If the backup channel itself hosts an
// incumbent, the client falls back to a deterministic secondary backup
// (the lowest incumbent-free UHF channel it observes) where the AP's
// sweeping scanner will eventually find its chirps.
#pragma once

#include "sim/scanner.h"
#include "sim/world.h"

namespace whitefi {

/// Client protocol parameters.
struct ClientParams {
  /// Declare disconnection after this long without hearing the AP.
  SimTime contact_timeout = 1 * kTicksPerSec;
  SimTime contact_check_interval = 250 * kTicksPerMs;
  SimTime chirp_interval = 150 * kTicksPerMs;
  SimTime report_interval = 2 * kTicksPerSec;
  /// Chirp frame size; its air time carries the SSID length-code.
  int chirp_bytes = 60;
  ScannerParams scanner;
};

/// A WhiteFi client.
class ClientNode : public Device {
 public:
  ClientNode(World& world, int id, const DeviceConfig& device_config,
             const ClientParams& params, Channel initial_main,
             Channel initial_backup, int ap_id);

  void Start() override;
  void OnIncumbentDetected(UhfIndex channel) override;

  /// True while the client believes it is connected.
  bool connected() const { return connected_; }

  /// Completed outage durations (disconnect -> reconnect), in ticks.
  const std::vector<SimTime>& outages() const { return outages_; }

  /// Number of disconnection events so far.
  int disconnect_events() const { return disconnects_; }

  Scanner& scanner() { return scanner_; }

 protected:
  void OnFrameReceived(const Frame& frame, Dbm rx_power) override;
  void OnChannelSwitched(const Channel& channel) override;

 private:
  void CheckContact();
  void Chirp();
  void SendReport();
  void Disconnect();
  void Reconnect();
  void SelectSecondaryBackup();

  ClientParams params_;
  Scanner scanner_;
  Rng rng_;
  Channel backup_;
  int ap_id_;
  bool connected_ = true;
  SimTime last_contact_ = 0;
  SimTime disconnected_at_ = 0;
  int disconnects_ = 0;
  std::vector<SimTime> outages_;
};

}  // namespace whitefi
