#include "core/ap.h"

#include <algorithm>

#include "util/log.h"

namespace whitefi {

ApNode::ApNode(World& world, int id, const DeviceConfig& device_config,
               const ApParams& params, Channel initial_main,
               Channel initial_backup)
    : Device(world, id, [&] {
        DeviceConfig c = device_config;
        c.is_ap = true;
        c.initial_channel = initial_main;
        return c;
      }()),
      params_(params),
      assigner_(params.assignment),
      scanner_(*this, params.scanner),
      main_(initial_main),
      backup_(initial_backup) {}

void ApNode::Start() {
  world_.RecordState(NodeId(), "operating");
  scanner_.StartSweep();
  scanner_.StartChirpWatch(backup_, ssid(),
                           [this](const ChirpInfo& info, const Channel& on) {
                             OnChirpHeard(info, on);
                           });
  UpdateSecondaryWatch();
  SendBeacon();
  if (params_.adaptive) {
    world_.sim().ScheduleAfter(params_.first_assignment_delay,
                               [this] { EvaluateAssignment(); });
  }
  SampleRate();
}

void ApNode::SampleRate() {
  rate_samples_.emplace_back(world_.sim().Now(),
                             world_.AppBytesInSsid(ssid()));
  if (rate_samples_.size() > 64) {
    rate_samples_.erase(rate_samples_.begin(), rate_samples_.begin() + 32);
  }
  world_.sim().ScheduleAfter(kTicksPerSec, [this] { SampleRate(); });
}

void ApNode::SendBeacon() {
  world_.sim().ScheduleAfter(params_.beacon_interval, [this] { SendBeacon(); });
  // Beacons are time-critical and must not pile up behind a data backlog:
  // jump the queue, and skip this interval if one is still waiting.
  if (mac().CountQueued(FrameType::kBeacon) > 0) return;
  Frame beacon;
  beacon.type = FrameType::kBeacon;
  beacon.dst = kBroadcastId;
  beacon.bytes = kBeaconBytes;
  beacon.payload = BeaconInfo{main_, backup_, ssid()};
  mac().EnqueueFront(beacon);
}

void ApNode::OnFrameReceived(const Frame& frame, Dbm) {
  if (frame.type == FrameType::kReport) {
    if (const auto* report = std::get_if<ReportInfo>(&frame.payload)) {
      ClientInfo& info = clients_[frame.src];
      info.map = report->map;
      info.observation = report->observation;
      info.last_seen = world_.sim().Now();
    }
  } else if (frame.type == FrameType::kChirp) {
    // Main radio happened to be on the chirp channel (e.g. while
    // collecting on the backup channel) — treat like the scanner path.
    if (const auto* chirp = std::get_if<ChirpInfo>(&frame.payload)) {
      if (chirp->ssid == ssid()) OnChirpHeard(*chirp, TunedChannel());
    }
  }
}

AssignmentInputs ApNode::BuildInputs() {
  ExpireClients();
  AssignmentInputs inputs;
  inputs.ap_map = ObservedMap();
  inputs.ap_observation = scanner_.Observation();
  for (const auto& [id, info] : clients_) {
    inputs.client_maps.push_back(info.map);
    inputs.client_observations.push_back(info.observation);
  }
  return inputs;
}

void ApNode::ExpireClients() {
  const SimTime now = world_.sim().Now();
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = now - it->second.last_seen > params_.client_expiry
             ? clients_.erase(it)
             : std::next(it);
  }
}

double ApNode::RecentThroughputBps(SimTime window) const {
  if (rate_samples_.empty()) return 0.0;
  const SimTime now = world_.sim().Now();
  const std::uint64_t bytes_now = world_.AppBytesInSsid(ssid());
  // Find the newest sample at least `window` old.
  const auto it = std::find_if(
      rate_samples_.rbegin(), rate_samples_.rend(),
      [&](const auto& s) { return now - s.first >= window; });
  const auto& base = it == rate_samples_.rend() ? rate_samples_.front() : *it;
  const SimTime elapsed = now - base.first;
  if (elapsed <= 0) return 0.0;
  return 8.0 * static_cast<double>(bytes_now - base.second) /
         ToSeconds(elapsed);
}

void ApNode::EvaluateAssignment() {
  world_.sim().ScheduleAfter(params_.assignment_interval,
                             [this] { EvaluateAssignment(); });
  if (state_ != State::kOperating || announce_pending_) return;

  const AssignmentInputs inputs = BuildInputs();
  const AssignmentDecision decision = [&] {
    ScopedPhaseTimer timer(world_.profiler(), "mcham.evaluate");
    return assigner_.Reevaluate(inputs, main_);
  }();
  last_metric_ = decision.metric;
  MetricsRegistry::Set(world_.metrics(), "whitefi.ap.last_metric",
                       last_metric_);
  if (!decision.channel.has_value()) return;
  if (!decision.switched) {
    // Keep the backup channel fresh (it may have been lost to a mic).
    if (!inputs.CombinedMap().CanUse(backup_)) {
      if (const auto backup = assigner_.SelectBackup(inputs, main_)) {
        backup_ = *backup;
        scanner_.SetChirpChannel(backup_);
        UpdateSecondaryWatch();
      }
    }
    return;
  }

  const Channel next = *decision.channel;
  const auto next_backup = assigner_.SelectBackup(inputs, next);
  ++voluntary_switches_;
  MetricsRegistry::Count(world_.metrics(), "whitefi.ap.voluntary_switches");
  revert_channel_ = main_;
  revert_backup_ = backup_;
  pre_switch_rate_bps_ = RecentThroughputBps(params_.revert_check_delay);
  revert_armed_ = pre_switch_rate_bps_ > 0.0;
  // Flight recorder: the MCham decision chain (scan -> scoring ->
  // switch) as one episode span, closed when the switch applies.
  BeginEpisode("ap.assignment", world_.NextTraceId());
  if (world_.trace() != nullptr) {
    TraceEvent note;
    note.kind = TraceEventKind::kNote;
    note.node = NodeId();
    note.span_id = episode_span_;
    note.flow_id = episode_flow_;
    note.detail = "mcham switch -> " + next.ToString() +
                  " metric=" + std::to_string(decision.metric);
    world_.TraceEventNow(std::move(note));
  }
  AnnounceAndSwitch(next, next_backup.value_or(backup_), /*voluntary=*/true);
}

void ApNode::AnnounceAndSwitch(const Channel& next_main,
                               const Channel& next_backup, bool voluntary) {
  if (!params_.adaptive || announce_pending_) return;
  announce_pending_ = true;
  announces_outstanding_ = params_.switch_announces;
  pending_main_ = next_main;
  pending_backup_ = next_backup;
  pending_voluntary_ = voluntary;
  announce_span_ = world_.NextTraceId();
  world_.TraceSpanBegin(NodeId(), announce_span_, episode_span_,
                        episode_flow_, "ap.announce");
  world_.RecordState(NodeId(), "announcing");

  Frame announce;
  announce.type = FrameType::kChannelSwitch;
  announce.dst = kBroadcastId;
  announce.bytes = kBeaconBytes;
  announce.payload = ChannelSwitchInfo{next_main, next_backup};
  for (int i = 0; i < params_.switch_announces; ++i) {
    world_.sim().ScheduleAfter(
        static_cast<SimTime>(i) * params_.switch_announce_gap,
        [this, announce] {
          if (announce_pending_) mac().EnqueueFront(announce);
        });
  }
  // Fallback: never hold the switch longer than the cap (a retune clears
  // the MAC queue, so unsent copies would be lost anyway).
  announce_timer_ = world_.sim().ScheduleAfter(
      params_.switch_announce_max_wait, [this] {
        announce_timer_ = kInvalidEventId;
        if (announce_pending_) ApplyPendingSwitch();
      });
}

void ApNode::OnSendComplete(const Frame& frame, bool) {
  if (frame.type != FrameType::kChannelSwitch || !announce_pending_) return;
  if (--announces_outstanding_ > 0) return;
  world_.sim().Cancel(announce_timer_);
  announce_timer_ = kInvalidEventId;
  // Give receivers a beat to process, then move.
  world_.sim().ScheduleAfter(5 * kTicksPerMs, [this] {
    if (announce_pending_) ApplyPendingSwitch();
  });
}

void ApNode::ApplyPendingSwitch() {
  announce_pending_ = false;
  main_ = pending_main_;
  backup_ = pending_backup_;
  ++switches_;
  MetricsRegistry::Count(world_.metrics(), "whitefi.ap.switches");
  state_ = State::kOperating;
  if (announce_span_ != 0) {
    world_.TraceSpanEnd(NodeId(), announce_span_, 0, "ap.announce");
    announce_span_ = 0;
  }
  scanner_.SetChirpChannel(backup_);
  UpdateSecondaryWatch();
  SwitchChannel(main_);
  EndEpisode();
  world_.RecordState(NodeId(), "operating");
  WHITEFI_LOG_TAGGED(LogLevel::kInfo, "core/ap" + std::to_string(NodeId()))
      << "now on " << main_.ToString() << " backup " << backup_.ToString();
  if (pending_voluntary_ && revert_armed_) {
    world_.sim().ScheduleAfter(params_.revert_check_delay, [this] {
      if (!revert_armed_ || state_ != State::kOperating) return;
      revert_armed_ = false;
      const double post = RecentThroughputBps(params_.revert_check_delay);
      if (post < params_.revert_tolerance * pre_switch_rate_bps_) {
        ++reverts_;
        MetricsRegistry::Count(world_.metrics(), "whitefi.ap.reverts");
        BeginEpisode("ap.assignment/revert", world_.NextTraceId());
        AnnounceAndSwitch(revert_channel_, revert_backup_,
                          /*voluntary=*/false);
      }
    });
  } else {
    revert_armed_ = false;
  }
}

void ApNode::OnIncumbentDetected(UhfIndex channel) {
  Device::OnIncumbentDetected(channel);
  if (!params_.adaptive) return;
  if (state_ == State::kCollecting && TunedChannel().Contains(channel)) {
    // Vacated INTO an active incumbent: a churn storm can cover the backup
    // as well as the channel we just fled.  Hop the collect to a fresh
    // channel immediately — waiting for FinishCollect would keep beaconing
    // over the mic for the rest of the collect window.  The observation
    // already marks the hot channel (Device::OnIncumbentDetected above),
    // so the assigner avoids it.
    const auto fresh = assigner_.SelectBackup(BuildInputs(), main_);
    if (fresh.has_value() && !fresh->Contains(channel) && *fresh != backup_) {
      backup_ = *fresh;
      scanner_.SetChirpChannel(backup_);
      UpdateSecondaryWatch();
      SwitchChannel(backup_);
      WHITEFI_LOG_TAGGED(LogLevel::kInfo,
                         "core/ap" + std::to_string(NodeId()))
          << "collect channel hot (mic ch" << TvChannelNumber(channel)
          << "), hopping collect to " << backup_.ToString();
    }
    return;
  }
  if (main_.Contains(channel)) {
    if (state_ == State::kOperating && !announce_pending_) {
      BeginCollect("incumbent", world_.MicFlowId(channel, NodeId()));
    } else {
      // Busy announcing/collecting/rescuing: the vacate must not be lost.
      // Re-check shortly; if the incumbent still sits inside whatever the
      // operating channel is by then, the normal path fires.
      world_.sim().ScheduleAfter(200 * kTicksPerMs, [this, channel] {
        if (world_.MicAudible(channel, NodeId()) && main_.Contains(channel)) {
          OnIncumbentDetected(channel);
        }
      });
    }
    return;
  }
  if (backup_.Contains(channel) && state_ == State::kOperating) {
    // Pick a fresh backup; clients learn it from subsequent beacons.
    const auto backup = assigner_.SelectBackup(BuildInputs(), main_);
    if (backup.has_value()) {
      backup_ = *backup;
      scanner_.SetChirpChannel(backup_);
      UpdateSecondaryWatch();
    }
  }
}

void ApNode::BeginCollect(const char* why, std::int64_t flow) {
  state_ = State::kCollecting;
  revert_armed_ = false;
  // Flight recorder: one episode span covering vacate -> collect ->
  // reassign -> announce -> re-beacon, on the trigger's causal flow.
  BeginEpisode(std::string("ap.vacate/") + why,
               flow != 0 ? flow : world_.NextTraceId());
  world_.RecordState(NodeId(), "collecting");
  SwitchChannel(backup_);  // Beacon loop keeps beaconing, now on backup.
  world_.sim().ScheduleAfter(params_.collect_window, [this] { FinishCollect(); });
  WHITEFI_LOG_TAGGED(LogLevel::kInfo, "core/ap" + std::to_string(NodeId()))
      << "vacated " << main_.ToString() << ", collecting on backup "
      << backup_.ToString();
}

void ApNode::FinishCollect() {
  if (state_ != State::kCollecting) return;
  const AssignmentInputs inputs = BuildInputs();
  const AssignmentDecision decision = [&] {
    ScopedPhaseTimer timer(world_.profiler(), "mcham.evaluate");
    return assigner_.SelectInitial(inputs);
  }();
  last_metric_ = decision.metric;
  MetricsRegistry::Set(world_.metrics(), "whitefi.ap.last_metric",
                       last_metric_);
  if (!decision.channel.has_value()) {
    // Nothing usable yet; keep collecting (rare: whole band occupied).
    world_.sim().ScheduleAfter(params_.collect_window,
                               [this] { FinishCollect(); });
    return;
  }
  const Channel next = *decision.channel;
  const auto next_backup = assigner_.SelectBackup(inputs, next);
  AnnounceAndSwitch(next, next_backup.value_or(backup_), /*voluntary=*/false);
}

void ApNode::OnChirpHeard(const ChirpInfo& info, const Channel& heard_on) {
  if (!params_.adaptive) return;
  MetricsRegistry::Count(world_.metrics(), "whitefi.ap.chirps_heard");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kChirp;
    event.node = NodeId();
    event.src = info.sender;
    // Continue the chirper's recovery flow: this is the client -> AP hop
    // of the causal chain.
    event.flow_id = info.trace_flow;
    event.detail = "heard on " + heard_on.ToString();
    world_.TraceEventNow(std::move(event));
  }
  // Merge the chirper's availability.
  ClientInfo& client = clients_[info.sender];
  client.map = info.map;
  client.observation = info.observation;
  client.last_seen = world_.sim().Now();

  if (state_ != State::kOperating || announce_pending_) return;
  if (!info.map.CanUse(main_)) {
    // The chirper sees an incumbent inside our operating channel: full
    // vacate-collect-reassign flow.
    BeginCollect("chirp", info.trace_flow);
  } else {
    // The chirper merely lost us (e.g. missed a switch): re-announce the
    // current channels on the channel the chirp came from — which may be a
    // stale backup or the chirper's secondary backup.
    RescueAnnounce(heard_on, info.trace_flow);
  }
}

void ApNode::UpdateSecondaryWatch() {
  if (!params_.watch_secondary_backup) return;
  // Same deterministic rule an escalated client applies to its own map
  // (ClientNode stage 1); never watch a secondary that merely duplicates
  // the primary.
  auto secondary = LowestFreeChannel(ObservedMap());
  if (secondary.has_value() && secondary->Overlaps(backup_)) {
    secondary = std::nullopt;
  }
  scanner_.SetSecondaryChirpChannel(secondary);
}

void ApNode::RescueAnnounce(const Channel& where, std::int64_t flow) {
  state_ = State::kRescuing;
  BeginEpisode("ap.rescue", flow != 0 ? flow : world_.NextTraceId());
  world_.RecordState(NodeId(), "rescuing");
  const Channel home = main_;
  SwitchChannel(where);
  Frame announce;
  announce.type = FrameType::kChannelSwitch;
  announce.dst = kBroadcastId;
  announce.bytes = kBeaconBytes;
  announce.payload = ChannelSwitchInfo{main_, backup_};
  for (int i = 1; i <= 3; ++i) {
    world_.sim().ScheduleAfter(static_cast<SimTime>(i) * 25 * kTicksPerMs,
                               [this, announce] {
                                 if (state_ == State::kRescuing) {
                                   mac().EnqueueFront(announce);
                                 }
                               });
  }
  world_.sim().ScheduleAfter(300 * kTicksPerMs, [this, home] {
    if (state_ == State::kRescuing) {
      state_ = State::kOperating;
      SwitchChannel(home);
      EndEpisode();
      world_.RecordState(NodeId(), "operating");
    }
  });
}

void ApNode::BeginEpisode(std::string name, std::int64_t flow) {
  EndEpisode();  // A stale episode must not leave an unbalanced span.
  episode_span_ = world_.NextTraceId();
  episode_flow_ = flow;
  episode_name_ = std::move(name);
  world_.TraceSpanBegin(NodeId(), episode_span_, 0, episode_flow_,
                        episode_name_);
}

void ApNode::EndEpisode() {
  if (episode_span_ == 0) return;
  world_.TraceSpanEnd(NodeId(), episode_span_, episode_flow_, episode_name_);
  episode_span_ = 0;
  episode_flow_ = 0;
  episode_name_.clear();
}

void ApNode::OnChannelSwitched(const Channel& channel) {
  ScheduleMicCheck(channel);
}

void ApNode::ScheduleMicCheck(const Channel& channel) {
  // A mic may already be active on a channel we just tuned to; the world's
  // fast path only fires on mic-on transitions, so check explicitly.
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    if (world_.MicAudible(c, NodeId())) {
      const UhfIndex mic = c;
      world_.sim().ScheduleAfter(world_.config().incumbent_detect_latency,
                                 [this, mic] {
                                   if (world_.MicAudible(mic, NodeId()) &&
                                       TunedChannel().Contains(mic)) {
                                     OnIncumbentDetected(mic);
                                   }
                                 });
    }
  }
}

}  // namespace whitefi
