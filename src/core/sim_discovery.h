// Discovery driven by the full simulator.
//
// `SimulatedScanEnvironment` implements the ScanEnvironment interface on
// top of a live World: a SIFT scan advances simulation time by one dwell
// while watching the medium's airtime books for the target network's AP
// (SIFT needs no decoding, so any transmission energy on the scanned UHF
// channel suffices and the width is read exactly — SIFT's width inference
// is exact, see the PipelineWidthSweep tests); a beacon-decode attempt
// retunes the searching device and counts beacons actually received
// through the normal MAC/medium path.
//
// This binds L-SIFT / J-SIFT / the baseline to real beacon schedules,
// contention and tuning delays instead of the analytic model.
#pragma once

#include "core/discovery.h"
#include "sim/world.h"

namespace whitefi {

/// ScanEnvironment over a running World.
class SimulatedScanEnvironment : public ScanEnvironment {
 public:
  /// `searcher` is the (not yet associated) device doing the scanning;
  /// `target_ssid` identifies the network being sought.  Dwells should
  /// cover at least one beacon interval (100 ms).
  SimulatedScanEnvironment(World& world, Device& searcher, int target_ssid,
                           SimTime sift_dwell = 120 * kTicksPerMs,
                           SimTime listen_dwell = 130 * kTicksPerMs);

  std::optional<SiftDetection> SiftScan(UhfIndex c) override;
  bool TryDecodeBeacon(const Channel& channel) override;

  /// Simulation time consumed by scans so far.
  SimTime TimeSpent() const { return spent_; }

 private:
  World& world_;
  Device& searcher_;
  int target_ssid_;
  SimTime sift_dwell_;
  SimTime listen_dwell_;
  SimTime spent_ = 0;
  int beacons_heard_ = 0;
};

}  // namespace whitefi
