// Discovery driven by the full simulator.
//
// `SimulatedScanEnvironment` implements the ScanEnvironment interface on
// top of a live World: a SIFT scan advances simulation time by one dwell
// while watching the medium's airtime books for the target network's AP
// (SIFT needs no decoding, so any transmission energy on the scanned UHF
// channel suffices and the width is read exactly — SIFT's width inference
// is exact, see the PipelineWidthSweep tests); a beacon-decode attempt
// retunes the searching device and counts beacons actually received
// through the normal MAC/medium path.
//
// This binds L-SIFT / J-SIFT / the baseline to real beacon schedules,
// contention and tuning delays instead of the analytic model.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/discovery.h"
#include "phy/signal.h"
#include "sim/world.h"

namespace whitefi {

/// ScanEnvironment over a running World.
class SimulatedScanEnvironment : public ScanEnvironment {
 public:
  /// `searcher` is the (not yet associated) device doing the scanning;
  /// `target_ssid` identifies the network being sought.  Dwells should
  /// cover at least one beacon interval (100 ms).
  SimulatedScanEnvironment(World& world, Device& searcher, int target_ssid,
                           SimTime sift_dwell = 120 * kTicksPerMs,
                           SimTime listen_dwell = 130 * kTicksPerMs);

  std::optional<SiftDetection> SiftScan(UhfIndex c) override;
  bool TryDecodeBeacon(const Channel& channel) override;

  /// Scans several UHF channels in ONE dwell: the wideband secondary radio
  /// watches all of them simultaneously, so a full sweep costs one dwell
  /// instead of one per channel.  During the dwell a frame tap records the
  /// transmissions crossing each requested channel; afterwards every
  /// channel's amplitude trace is synthesized and classified in one
  /// batched pass (SignalSynthesizer::SynthesizeBatchInto feeding
  /// SiftBatch) — a lane detects only when real SIFT bursts appear in its
  /// trace AND the airtime books attribute target-network energy to it,
  /// matching the single-channel SiftScan verdict.
  ///
  /// Returns one entry per input channel, in order.  The first call lazily
  /// installs the tap and seeds the batch synthesizer from a named
  /// substream of the world seed, so worlds that never batch-scan are
  /// bit-identical to worlds built before this API existed.
  std::vector<std::optional<SiftDetection>> SiftScanBatch(
      std::span<const UhfIndex> channels);

 private:
  /// One transmission overheard during a batch dwell.
  struct BatchHeard {
    Channel channel;  ///< The sender's operating channel.
    Us start = 0.0;   ///< Relative to dwell start.
    Us duration = 0.0;
    bool ramp = false;  ///< 5 MHz ramp artifact applies.
  };

  void EnsureBatchScanner();

 public:
  /// Simulation time consumed by scans so far.
  SimTime TimeSpent() const { return spent_; }

 private:
  World& world_;
  Device& searcher_;
  int target_ssid_;
  SimTime sift_dwell_;
  SimTime listen_dwell_;
  SimTime spent_ = 0;
  int beacons_heard_ = 0;

  // Batched scan state (lazy; see SiftScanBatch).
  bool batch_ready_ = false;
  bool batch_dwelling_ = false;
  SimTime batch_dwell_started_ = 0;
  std::vector<BatchHeard> batch_heard_;
  std::optional<SignalSynthesizer> batch_synth_;
  /// Scratch reused across batch scans (lane schedules + flat traces).
  std::vector<std::vector<Burst>> lane_bursts_;
  BatchTrace batch_trace_;
};

}  // namespace whitefi
