#include "core/mcham.h"

#include <algorithm>

namespace whitefi {

double Rho(const ChannelObservation& obs) {
  const double residual = 1.0 - std::clamp(obs.airtime, 0.0, 1.0);
  const double fair_share = 1.0 / (std::max(obs.ap_count, 0) + 1.0);
  return std::max(residual, fair_share);
}

double MCham(const Channel& channel, const BandObservation& observation) {
  if (!channel.IsValid()) return 0.0;
  double product = 1.0;
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    const auto& obs = observation[static_cast<std::size_t>(c)];
    if (obs.incumbent) return 0.0;
    product *= Rho(obs);
  }
  return (WidthMHz(channel.width) / 5.0) * product;
}

double ApDecisionMetric(const Channel& channel,
                        const BandObservation& ap_observation,
                        std::span<const BandObservation> client_observations) {
  const double n = static_cast<double>(client_observations.size());
  double metric = std::max(n, 1.0) * MCham(channel, ap_observation);
  for (const BandObservation& obs : client_observations) {
    metric += MCham(channel, obs);
  }
  return metric;
}

double IdleMCham(ChannelWidth width) { return WidthMHz(width) / 5.0; }

MChamScan::MChamScan(const BandObservation& observation) {
  // One pass: Rho and the incumbent prefix for every channel.  Channels
  // beyond the observation's extent are treated as incumbent-occupied so
  // lookups spanning them return 0 instead of reading out of bounds.
  std::array<double, kNumUhfChannels> rho;
  for (std::size_t c = 0; c < kNumUhfChannels; ++c) {
    const bool present = c < observation.size();
    rho[c] = present ? Rho(observation[c]) : 1.0;
    const bool incumbent = !present || observation[c].incumbent;
    incumbent_prefix_[c + 1] = incumbent_prefix_[c] + (incumbent ? 1 : 0);
  }
  // Window products, widened incrementally and left-associated exactly as
  // MCham's `product *= Rho(...)` loop (IEEE: 1.0 * x == x), so every
  // entry is bit-equal to the naive walk over the same span.
  auto& p1 = prod_[static_cast<std::size_t>(ChannelWidth::kW5)];
  auto& p3 = prod_[static_cast<std::size_t>(ChannelWidth::kW10)];
  auto& p5 = prod_[static_cast<std::size_t>(ChannelWidth::kW20)];
  p1 = rho;
  for (std::size_t low = 0; low + 3 <= kNumUhfChannels; ++low) {
    p3[low] = rho[low] * rho[low + 1] * rho[low + 2];
  }
  for (std::size_t low = 0; low + 5 <= kNumUhfChannels; ++low) {
    p5[low] = p3[low] * rho[low + 3] * rho[low + 4];
  }
}

double MChamScan::Evaluate(const Channel& channel) const {
  if (!channel.IsValid()) return 0.0;
  const auto low = static_cast<std::size_t>(channel.Low());
  const auto high = static_cast<std::size_t>(channel.High());
  if (incumbent_prefix_[high + 1] - incumbent_prefix_[low] > 0) return 0.0;
  return (WidthMHz(channel.width) / 5.0) *
         prod_[static_cast<std::size_t>(channel.width)][low];
}

ApDecisionScan::ApDecisionScan(
    const BandObservation& ap_observation,
    std::span<const BandObservation> client_observations)
    : weight_(std::max(static_cast<double>(client_observations.size()), 1.0)),
      ap_(ap_observation) {
  clients_.reserve(client_observations.size());
  for (const BandObservation& obs : client_observations) {
    clients_.emplace_back(obs);
  }
}

double ApDecisionScan::Evaluate(const Channel& channel) const {
  // Same accumulation order as ApDecisionMetric: weighted AP view first,
  // then the clients in order.
  double metric = weight_ * ap_.Evaluate(channel);
  for (const MChamScan& client : clients_) metric += client.Evaluate(channel);
  return metric;
}

}  // namespace whitefi
