#include "core/mcham.h"

#include <algorithm>

namespace whitefi {

double Rho(const ChannelObservation& obs) {
  const double residual = 1.0 - std::clamp(obs.airtime, 0.0, 1.0);
  const double fair_share = 1.0 / (std::max(obs.ap_count, 0) + 1.0);
  return std::max(residual, fair_share);
}

double MCham(const Channel& channel, const BandObservation& observation) {
  if (!channel.IsValid()) return 0.0;
  double product = 1.0;
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    const auto& obs = observation[static_cast<std::size_t>(c)];
    if (obs.incumbent) return 0.0;
    product *= Rho(obs);
  }
  return (WidthMHz(channel.width) / 5.0) * product;
}

double ApDecisionMetric(const Channel& channel,
                        const BandObservation& ap_observation,
                        std::span<const BandObservation> client_observations) {
  const double n = static_cast<double>(client_observations.size());
  double metric = std::max(n, 1.0) * MCham(channel, ap_observation);
  for (const BandObservation& obs : client_observations) {
    metric += MCham(channel, obs);
  }
  return metric;
}

double IdleMCham(ChannelWidth width) { return WidthMHz(width) / 5.0; }

}  // namespace whitefi
