// The WhiteFi access point (paper Sections 4.1 and 4.3).
//
// Responsibilities:
//  * beacon every 100 ms, advertising the operating and backup channels;
//  * run the scanner sweep and collect client Report frames to maintain
//    AssignmentInputs; periodically re-evaluate the channel with the
//    MCham-based assigner (voluntary switches, with hysteresis and a
//    revert check if the measured throughput drops after the switch);
//  * on incumbent detection on the operating channel, vacate to the
//    backup channel, collect availability for T_c, reassign, announce,
//    and move the network;
//  * watch the backup channel for chirps with the secondary radio (every
//    3 s) and run the same collect/reassign flow when a disconnected
//    client signals an incumbent — or re-announce the current channels
//    ("rescue") when the chirper simply lost the network.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/assignment.h"
#include "sim/scanner.h"
#include "sim/world.h"

namespace whitefi {

/// AP protocol parameters.
struct ApParams {
  SimTime beacon_interval = 100 * kTicksPerMs;
  SimTime assignment_interval = 5 * kTicksPerSec;
  SimTime first_assignment_delay = 3 * kTicksPerSec;
  /// T_c: chirp/availability collection window after vacating (paper 4.3).
  SimTime collect_window = 500 * kTicksPerMs;
  SimTime switch_announce_gap = 15 * kTicksPerMs;
  int switch_announces = 5;
  /// A channel switch is applied as soon as every announce frame has been
  /// transmitted, or after this cap (heavily contended channels can delay
  /// broadcasts; switching earlier would destroy the queued announces).
  SimTime switch_announce_max_wait = 800 * kTicksPerMs;
  /// Voluntary-switch revert: re-check after this delay...
  SimTime revert_check_delay = 3 * kTicksPerSec;
  /// ...and revert if throughput fell below this fraction of the pre-switch
  /// rate.
  double revert_tolerance = 0.85;
  /// When false the AP never changes channels (static OPT baselines).
  bool adaptive = true;
  /// Hardening: alternate the chirp watch between the backup channel and
  /// the deterministic secondary backup (LowestFreeChannel of the AP's
  /// map).  Escalated clients chirping on their secondary backup are then
  /// heard by the watch instead of relying on the slow band sweep.  Off
  /// by default: the plain watch is the paper's protocol.
  bool watch_secondary_backup = false;
  /// Forget clients not heard from for this long.
  SimTime client_expiry = 20 * kTicksPerSec;
  AssignmentParams assignment;
  ScannerParams scanner;
};

/// A WhiteFi access point.
class ApNode : public Device {
 public:
  ApNode(World& world, int id, const DeviceConfig& device_config,
         const ApParams& params, Channel initial_main, Channel initial_backup);

  void Start() override;
  void OnIncumbentDetected(UhfIndex channel) override;

  const Channel& main_channel() const { return main_; }
  const Channel& backup_channel() const { return backup_; }
  int NumKnownClients() const { return static_cast<int>(clients_.size()); }
  int num_switches() const { return switches_; }
  int num_voluntary_switches() const { return voluntary_switches_; }
  int num_reverts() const { return reverts_; }
  Scanner& scanner() { return scanner_; }
  const SpectrumAssigner& assigner() const { return assigner_; }

  /// Latest decision metric of the operating channel (diagnostics).
  double last_metric() const { return last_metric_; }

 protected:
  void OnFrameReceived(const Frame& frame, Dbm rx_power) override;
  void OnSendComplete(const Frame& frame, bool success) override;
  void OnChannelSwitched(const Channel& channel) override;

 private:
  enum class State { kOperating, kCollecting, kRescuing };

  struct ClientInfo {
    SpectrumMap map;
    BandObservation observation;
    SimTime last_seen = 0;
  };

  void SendBeacon();
  void SampleRate();
  void EvaluateAssignment();
  AssignmentInputs BuildInputs();
  void ExpireClients();
  void AnnounceAndSwitch(const Channel& next_main, const Channel& next_backup,
                         bool voluntary);
  void ApplyPendingSwitch();
  /// `why` labels the vacate episode span ("incumbent" / "chirp");
  /// `flow` continues the trigger's causal flow (mic or chirper).
  void BeginCollect(const char* why, std::int64_t flow);
  void FinishCollect();
  void OnChirpHeard(const ChirpInfo& info, const Channel& heard_on);
  void RescueAnnounce(const Channel& where, std::int64_t flow);
  /// Flight recorder: opens/closes the AP's episode span (one vacate,
  /// assignment, or rescue); a fresh Begin closes any stale episode.
  void BeginEpisode(std::string name, std::int64_t flow);
  void EndEpisode();
  void UpdateSecondaryWatch();
  void ScheduleMicCheck(const Channel& channel);
  double RecentThroughputBps(SimTime window) const;

  ApParams params_;
  SpectrumAssigner assigner_;
  Scanner scanner_;
  Channel main_;
  Channel backup_;
  State state_ = State::kOperating;
  std::map<int, ClientInfo> clients_;
  int switches_ = 0;
  int voluntary_switches_ = 0;
  int reverts_ = 0;
  double last_metric_ = 0.0;

  // In-flight switch announcement.
  bool announce_pending_ = false;
  int announces_outstanding_ = 0;
  Channel pending_main_;
  Channel pending_backup_;
  bool pending_voluntary_ = false;
  EventId announce_timer_ = kInvalidEventId;

  // Throughput history for the revert check: (time, ssid bytes) samples.
  std::vector<std::pair<SimTime, std::uint64_t>> rate_samples_;

  // Revert bookkeeping.
  Channel revert_channel_;
  Channel revert_backup_;
  double pre_switch_rate_bps_ = 0.0;
  bool revert_armed_ = false;

  // Flight-recorder state: the current episode span (vacate/assignment/
  // rescue) and the announce child span inside it (0 = none).
  std::int64_t episode_span_ = 0;
  std::int64_t episode_flow_ = 0;
  std::string episode_name_;
  std::int64_t announce_span_ = 0;
};

}  // namespace whitefi
