// Umbrella header: the full WhiteFi public API.
//
// Include this to get the spectrum model, the PHY/SIFT signal pipeline,
// the discrete-event simulator, and the WhiteFi protocol (MCham spectrum
// assignment, L-/J-SIFT discovery, chirp-based disconnection handling).
#pragma once

#include "audio/mos.h"
#include "core/ap.h"
#include "core/assignment.h"
#include "core/client.h"
#include "core/discovery.h"
#include "core/mcham.h"
#include "core/sim_discovery.h"
#include "phy/attenuation.h"
#include "phy/noncontiguous.h"
#include "phy/signal.h"
#include "phy/timing.h"
#include "sift/airtime.h"
#include "sift/chirp.h"
#include "sift/detector.h"
#include "sift/matcher.h"
#include "sim/scanner.h"
#include "sim/signal_scanner.h"
#include "sim/tracer.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "spectrum/campus.h"
#include "spectrum/geodb.h"
#include "spectrum/incumbents.h"
#include "spectrum/locales.h"
#include "spectrum/spectrum_map.h"
#include "util/config.h"
#include "util/log.h"
#include "util/report.h"
#include "util/stats.h"
