#include "core/assignment.h"

namespace whitefi {

SpectrumMap AssignmentInputs::CombinedMap() const {
  SpectrumMap combined = ap_map;
  for (const SpectrumMap& m : client_maps) combined = combined.UnionWith(m);
  return combined;
}

SpectrumAssigner::SpectrumAssigner(const AssignmentParams& params)
    : params_(params) {}

double SpectrumAssigner::EvaluateChannel(const Channel& channel,
                                         const AssignmentInputs& inputs) const {
  if (!inputs.CombinedMap().CanUse(channel,
                                   params_.enumeration.respect_channel37_gap)) {
    return 0.0;
  }
  return ApDecisionMetric(channel, inputs.ap_observation,
                          inputs.client_observations);
}

std::optional<Channel> SpectrumAssigner::BestCandidate(
    const AssignmentInputs& inputs, double* best_metric) const {
  const SpectrumMap combined = inputs.CombinedMap();
  // One scan per observation serves all candidates; bit-equal to calling
  // ApDecisionMetric per candidate (tests/core_mcham_test.cc).
  const ApDecisionScan scan(inputs.ap_observation, inputs.client_observations);
  std::optional<Channel> best;
  double best_value = 0.0;
  for (const Channel& candidate : combined.UsableChannels(params_.enumeration)) {
    const double value = scan.Evaluate(candidate);
    if (!best.has_value() || value > best_value) {
      best = candidate;
      best_value = value;
    }
  }
  if (best_metric != nullptr) *best_metric = best_value;
  return best;
}

AssignmentDecision SpectrumAssigner::SelectInitial(
    const AssignmentInputs& inputs) const {
  AssignmentDecision decision;
  decision.channel = BestCandidate(inputs, &decision.metric);
  decision.switched = decision.channel.has_value();
  return decision;
}

AssignmentDecision SpectrumAssigner::Reevaluate(const AssignmentInputs& inputs,
                                                const Channel& current) const {
  AssignmentDecision decision;
  double best_metric = 0.0;
  const std::optional<Channel> best = BestCandidate(inputs, &best_metric);
  if (!best.has_value()) {
    // Nothing usable at all; stay put only if current still is.
    const double current_metric = EvaluateChannel(current, inputs);
    if (current_metric > 0.0) {
      decision.channel = current;
      decision.metric = current_metric;
    }
    return decision;
  }
  const double current_metric = EvaluateChannel(current, inputs);
  if (current_metric <= 0.0) {
    // Incumbent (or client-side incumbent) on the current channel: forced.
    decision.channel = best;
    decision.metric = best_metric;
    decision.switched = !(*best == current);
    return decision;
  }
  if (*best == current || best_metric <= params_.hysteresis * current_metric) {
    decision.channel = current;
    decision.metric = current_metric;
    return decision;
  }
  decision.channel = best;
  decision.metric = best_metric;
  decision.switched = true;
  return decision;
}

std::optional<Channel> SpectrumAssigner::SelectBackup(
    const AssignmentInputs& inputs, const Channel& main) const {
  const SpectrumMap combined = inputs.CombinedMap();
  const ApDecisionScan scan(inputs.ap_observation, inputs.client_observations);
  std::optional<Channel> best;
  double best_value = -1.0;
  std::optional<Channel> fallback;
  double fallback_value = -1.0;
  for (const Channel& candidate :
       ChannelsOfWidth(ChannelWidth::kW5, params_.enumeration)) {
    if (!combined.CanUse(candidate,
                         params_.enumeration.respect_channel37_gap)) {
      continue;
    }
    const double value = scan.Evaluate(candidate);
    if (candidate.Overlaps(main)) {
      if (value > fallback_value) {
        fallback = candidate;
        fallback_value = value;
      }
      continue;
    }
    if (value > best_value) {
      best = candidate;
      best_value = value;
    }
  }
  return best.has_value() ? best : fallback;
}

}  // namespace whitefi
