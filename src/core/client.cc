#include "core/client.h"

#include <algorithm>
#include <stdexcept>

#include "sim/audit_hooks.h"
#include "util/log.h"

namespace whitefi {

void ValidateClientParams(const ClientParams& params) {
  if (params.contact_timeout <= 0 || params.contact_check_interval <= 0) {
    throw std::invalid_argument(
        "client contact timeout and check interval must be positive");
  }
  if (params.chirp_interval <= 0 || params.report_interval <= 0) {
    throw std::invalid_argument(
        "client chirp and report intervals must be positive");
  }
  if (params.chirp_bytes <= 0) {
    throw std::invalid_argument("client chirp_bytes must be positive");
  }
  if (params.chirp_jitter < 0.0 || params.chirp_jitter >= 1.0) {
    throw std::invalid_argument("client chirp_jitter must lie in [0, 1)");
  }
  if (params.chirp_backoff_factor <= 1.0) {
    throw std::invalid_argument(
        "client chirp_backoff_factor must exceed 1");
  }
  if (params.chirp_interval_max < params.chirp_interval) {
    throw std::invalid_argument(
        "client chirp_interval_max must be >= chirp_interval");
  }
  if (params.reconnect_stage_timeout <= 0) {
    throw std::invalid_argument(
        "client reconnect_stage_timeout must be positive");
  }
  ValidateScannerParams(params.scanner);
}

ClientNode::ClientNode(World& world, int id, const DeviceConfig& device_config,
                       const ClientParams& params, Channel initial_main,
                       Channel initial_backup, int ap_id)
    : Device(world, id, [&] {
        ValidateClientParams(params);
        DeviceConfig c = device_config;
        c.is_ap = false;
        c.initial_channel = initial_main;
        return c;
      }()),
      params_(params),
      scanner_(*this, params.scanner),
      rng_(world.NewRng()),
      backup_(initial_backup),
      ap_id_(ap_id),
      chirp_period_(params.chirp_interval) {}

void ClientNode::Start() {
  last_contact_ = world_.sim().Now();
  world_.RecordState(NodeId(), "connected");
  scanner_.StartSweep();
  world_.sim().ScheduleAfter(params_.contact_check_interval,
                             [this] { CheckContact(); });
  world_.sim().ScheduleAfter(params_.report_interval, [this] { SendReport(); });
}

void ClientNode::OnFrameReceived(const Frame& frame, Dbm) {
  switch (frame.type) {
    case FrameType::kBeacon: {
      const auto* beacon = std::get_if<BeaconInfo>(&frame.payload);
      if (beacon == nullptr || beacon->ssid != ssid()) return;
      last_contact_ = world_.sim().Now();
      backup_ = beacon->backup;
      // Hearing our AP's beacon on the channel we are tuned to means we
      // are in contact (possibly on the backup channel during a collect
      // phase — stay until the ChannelSwitch arrives).
      if (!connected_ && beacon->main == TunedChannel()) Reconnect();
      break;
    }
    case FrameType::kChannelSwitch: {
      const auto* info = std::get_if<ChannelSwitchInfo>(&frame.payload);
      if (info == nullptr) return;
      last_contact_ = world_.sim().Now();
      backup_ = info->new_backup;
      if (!(TunedChannel() == info->new_channel)) {
        SwitchChannel(info->new_channel);
      }
      if (!connected_) Reconnect();
      break;
    }
    case FrameType::kData:
      last_contact_ = world_.sim().Now();
      break;
    default:
      break;
  }
}

void ClientNode::CheckContact() {
  world_.sim().ScheduleAfter(params_.contact_check_interval,
                             [this] { CheckContact(); });
  if (!connected_) return;
  if (world_.sim().Now() - last_contact_ > params_.contact_timeout) {
    WHITEFI_LOG_TAGGED(LogLevel::kInfo,
                       "core/client" + std::to_string(NodeId()))
        << "lost contact, vacating to " << backup_.ToString();
    Disconnect();
  }
}

void ClientNode::Disconnect(const char* cause, std::int64_t cause_flow) {
  if (!connected_) return;
  connected_ = false;
  ++disconnects_;
  ++reconnect_epoch_;
  reconnect_stage_ = 0;
  chirp_period_ = params_.chirp_interval;
  MetricsRegistry::Count(world_.metrics(), "whitefi.client.disconnects");
  disconnected_at_ = world_.sim().Now();
  if (AuditHooks* auditor = world_.obs().auditor; auditor != nullptr) {
    auditor->OnClientDisconnected(disconnected_at_, NodeId());
  }
  // Flight recorder: open the recovery span before the vacate so the
  // channel switch and first chirp land inside it.  An incumbent-caused
  // disconnect continues the mic's flow; otherwise the recovery starts a
  // flow of its own (chirps thread it through the AP's rescue).
  recovery_flow_ = cause_flow != 0 ? cause_flow : world_.NextTraceId();
  recovery_span_ = world_.NextTraceId();
  recovery_name_ = std::string("client.recovery/") + cause;
  world_.TraceSpanBegin(NodeId(), recovery_span_, 0, recovery_flow_,
                        recovery_name_);
  BeginRecoveryPhase("client.phase.chirp_backup");
  world_.RecordState(NodeId(), "chirping");
  SwitchChannel(backup_);
  Chirp();
  if (params_.reconnect_escalation) ScheduleEscalation();
}

void ClientNode::Reconnect() {
  if (connected_) return;
  connected_ = true;
  ++reconnect_epoch_;
  reconnect_stage_ = 0;
  // Close the phase and recovery spans at the reconnect instant; the
  // recovery end carries the flow so the causal arrow terminates here.
  if (phase_span_ != 0) {
    world_.TraceSpanEnd(NodeId(), phase_span_, 0, phase_name_);
    phase_span_ = 0;
    phase_name_.clear();
  }
  if (recovery_span_ != 0) {
    world_.TraceSpanEnd(NodeId(), recovery_span_, recovery_flow_,
                        recovery_name_);
    recovery_span_ = 0;
    recovery_flow_ = 0;
    recovery_name_.clear();
  }
  world_.RecordState(NodeId(), "connected");
  outages_.push_back(world_.sim().Now() - disconnected_at_);
  MetricsRegistry::Observe(world_.metrics(), "whitefi.client.outage_s",
                           ToSeconds(outages_.back()));
  if (AuditHooks* auditor = world_.obs().auditor; auditor != nullptr) {
    auditor->OnClientReconnected(world_.sim().Now(), NodeId());
  }
  WHITEFI_LOG_TAGGED(LogLevel::kInfo, "core/client" + std::to_string(NodeId()))
      << "reconnected after " << ToSeconds(outages_.back()) << " s";
  // Give the AP a fresh view promptly — but not before the AP has applied
  // its own switch (it keeps announcing on the rendezvous channel for a
  // few tens of milliseconds after we have already moved).
  world_.sim().ScheduleAfter(250 * kTicksPerMs, [this] {
    if (connected_) SendReport();
  });
}

void ClientNode::Chirp() {
  if (connected_) return;
  // The chirp's air time length-codes the SSID (see sift::ChirpCodec);
  // the scanner-side filter models that code.
  Frame chirp;
  chirp.type = FrameType::kChirp;
  chirp.dst = kBroadcastId;
  chirp.bytes = params_.chirp_bytes;
  chirp.payload = ChirpInfo{ObservedMap(), scanner_.Observation(), ssid(),
                            NodeId(), recovery_flow_};
  MetricsRegistry::Count(world_.metrics(), "whitefi.client.chirps");
  if (EventTrace* trace = world_.trace();
      trace != nullptr && trace->Wants(TraceEventKind::kChirp)) {
    TraceEvent event;
    event.kind = TraceEventKind::kChirp;
    event.node = NodeId();
    event.src = NodeId();
    event.bytes = chirp.bytes;
    event.span_id = phase_span_;
    event.flow_id = recovery_flow_;
    event.detail = "sent on " + TunedChannel().ToString();
    world_.TraceEventNow(std::move(event));
  } else if (trace != nullptr) {
    trace->CountSkipped(TraceEventKind::kChirp);
  }
  // Jump the queue: application traffic (e.g. a still-running backlogged
  // uplink) must not starve the distress signal.
  mac().EnqueueFront(chirp);
  if (AuditHooks* auditor = world_.obs().auditor; auditor != nullptr) {
    auditor->OnChirp(world_.sim().Now(), NodeId());
  }
  // Jitter the period: without it, a deterministic chirp cycle can phase-
  // lock against the AP scanner's dwell cycle and systematically miss the
  // rescue window (real radio clocks drift; the simulator's don't).
  const auto jittered = static_cast<SimTime>(
      static_cast<double>(chirp_period_) *
      rng_.Uniform(1.0 - params_.chirp_jitter, 1.0 + params_.chirp_jitter));
  // Hardening: exponential backoff de-synchronizes clients disconnected by
  // the same incumbent — at a fixed period their chirps contend with each
  // other on the backup channel every cycle.
  if (params_.chirp_backoff) {
    chirp_period_ = std::min(
        params_.chirp_interval_max,
        static_cast<SimTime>(static_cast<double>(chirp_period_) *
                             params_.chirp_backoff_factor));
  }
  world_.sim().ScheduleAfter(jittered, [this] { Chirp(); });
}

void ClientNode::BeginRecoveryPhase(std::string_view name) {
  if (phase_span_ != 0) {
    world_.TraceSpanEnd(NodeId(), phase_span_, 0, phase_name_);
  }
  phase_span_ = world_.NextTraceId();
  phase_name_ = std::string(name);
  world_.TraceSpanBegin(NodeId(), phase_span_, recovery_span_, recovery_flow_,
                        phase_name_);
}

void ClientNode::ScheduleEscalation() {
  const std::uint64_t epoch = reconnect_epoch_;
  world_.sim().ScheduleAfter(params_.reconnect_stage_timeout, [this, epoch] {
    if (connected_ || epoch != reconnect_epoch_) return;
    EscalateReconnect();
  });
}

void ClientNode::EscalateReconnect() {
  ++reconnect_stage_;
  MetricsRegistry::Count(world_.metrics(),
                         "whitefi.client.reconnect_escalations");
  if (reconnect_stage_ == 1) {
    // Stage 1: the backup channel is not producing a rescue — fall back to
    // the deterministic secondary backup.
    BeginRecoveryPhase("client.phase.secondary_backup");
    world_.RecordState(NodeId(), "scanning");
    SelectSecondaryBackup();
  } else {
    if (reconnect_stage_ == 2) {
      // Later sweep hops stay within this one phase span.
      BeginRecoveryPhase("client.phase.sweep");
      world_.RecordState(NodeId(), "scanning");
    }
    // Stage >= 2: full sweep — hop to the next observed free channel and
    // keep chirping; the AP's band sweep doubles as an all-channel rescue
    // scan, so any free channel is a potential rendezvous.
    const SpectrumMap map = ObservedMap();
    const UhfIndex start = backup_.Low();
    for (int i = 1; i <= kNumUhfChannels; ++i) {
      const auto c = static_cast<UhfIndex>((start + i) % kNumUhfChannels);
      if (map.Free(c)) {
        backup_ = Channel{c, ChannelWidth::kW5};
        SwitchChannel(backup_);
        break;
      }
    }
  }
  {
    TraceEvent event;
    event.kind = TraceEventKind::kNote;
    event.node = NodeId();
    event.span_id = phase_span_;
    event.flow_id = recovery_flow_;
    event.detail = "reconnect escalate stage " +
                   std::to_string(reconnect_stage_) + " -> " +
                   backup_.ToString();
    world_.TraceEventNow(std::move(event));
  }
  ScheduleEscalation();
}

void ClientNode::SendReport() {
  world_.sim().ScheduleAfter(params_.report_interval, [this] { SendReport(); });
  if (!connected_) return;
  Frame report;
  report.type = FrameType::kReport;
  report.dst = ap_id_;
  report.bytes = 120;  // Map + airtime vector.
  report.payload = ReportInfo{ObservedMap(), scanner_.Observation()};
  mac().Enqueue(report);
}

void ClientNode::OnIncumbentDetected(UhfIndex channel) {
  Device::OnIncumbentDetected(channel);
  if (connected_ && TunedChannel().Contains(channel)) {
    WHITEFI_LOG_TAGGED(LogLevel::kInfo,
                       "core/client" + std::to_string(NodeId()))
        << "detected incumbent on ch" << TvChannelNumber(channel)
        << ", vacating";
    Disconnect("incumbent", world_.MicFlowId(channel, NodeId()));
    return;
  }
  if (!connected_ && backup_.Contains(channel)) SelectSecondaryBackup();
}

void ClientNode::SelectSecondaryBackup() {
  // The shared deterministic rule (LowestFreeChannel) — the AP's
  // secondary chirp watch evaluates the same rule over its own map, so
  // matching maps mean a rendezvous.
  if (const auto secondary = LowestFreeChannel(ObservedMap())) {
    backup_ = *secondary;
    SwitchChannel(backup_);
  }
}

void ClientNode::OnChannelSwitched(const Channel& channel) {
  // A mic may already be active here (the world fast path only fires on
  // transitions).
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    if (world_.MicAudible(c, NodeId())) {
      const UhfIndex mic = c;
      world_.sim().ScheduleAfter(world_.config().incumbent_detect_latency,
                                 [this, mic] {
                                   if (world_.MicAudible(mic, NodeId()) &&
                                       TunedChannel().Contains(mic)) {
                                     OnIncumbentDetected(mic);
                                   }
                                 });
    }
  }
}

}  // namespace whitefi
