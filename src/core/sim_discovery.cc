#include "core/sim_discovery.h"

#include <algorithm>

#include "sift/batch.h"
#include "util/rng.h"

namespace whitefi {

SimulatedScanEnvironment::SimulatedScanEnvironment(World& world,
                                                   Device& searcher,
                                                   int target_ssid,
                                                   SimTime sift_dwell,
                                                   SimTime listen_dwell)
    : world_(world),
      searcher_(searcher),
      target_ssid_(target_ssid),
      sift_dwell_(sift_dwell),
      listen_dwell_(listen_dwell) {
  searcher_.AddReceiveHook([this](const Frame& frame) {
    if (frame.type != FrameType::kBeacon) return;
    const auto* beacon = std::get_if<BeaconInfo>(&frame.payload);
    if (beacon != nullptr && beacon->ssid == target_ssid_) ++beacons_heard_;
  });
}

std::optional<SiftDetection> SimulatedScanEnvironment::SiftScan(UhfIndex c) {
  ScopedPhaseTimer timer(world_.profiler(), "discovery.scan");
  MetricsRegistry::Count(world_.metrics(), "whitefi.discovery.probes");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kDiscoveryProbe;
    event.node = searcher_.NodeId();
    event.detail = "sift ch" + std::to_string(c);
    world_.TraceEventNow(std::move(event));
  }
  // The secondary radio samples channel `c` for one dwell; SIFT detects
  // any WhiteFi transmission overlapping it without decoding.
  const ChannelBooks before = world_.medium().ChannelBooksAt(c);
  world_.RunFor(ToSeconds(sift_dwell_));
  spent_ += sift_dwell_;
  const ChannelBooks& after = world_.medium().ChannelBooksAt(c);

  const std::vector<int> members = world_.NodesInSsid(target_ssid_);
  const auto& b = before.per_node;
  const auto& a = after.per_node;
  for (int id : members) {
    const auto bt = b.find(id);
    const auto at = a.find(id);
    const Us before_time = bt == b.end() ? 0.0 : bt->second;
    const Us after_time = at == a.end() ? 0.0 : at->second;
    if (after_time <= before_time) continue;
    // Energy from the target network seen on `c`: SIFT reports the exact
    // width from the Data/ACK (or beacon/CTS) timings.
    const Device* device = world_.FindDevice(id);
    if (device == nullptr) continue;
    return SiftDetection{device->TunedChannel().width, 1};
  }
  return std::nullopt;
}

void SimulatedScanEnvironment::EnsureBatchScanner() {
  if (batch_ready_) return;
  batch_ready_ = true;
  // A named substream of the world seed, NOT World::NewRng(): forking the
  // world stream here would shift every later fork and change worlds that
  // never batch-scan.
  batch_synth_.emplace(
      SignalParams{},
      Rng(DeriveSeed(world_.config().seed, "sim-discovery-batch")));
  batch_synth_->SetProfiler(world_.profiler());
  world_.medium().AddFrameTap([this](const Channel& channel,
                                     const Frame& frame, const RadioPort&) {
    if (!batch_dwelling_) return;
    const PhyTiming timing = PhyTiming::ForWidth(channel.width);
    const Us duration = timing.FrameDuration(frame.bytes);
    const Us end = ToUs(world_.sim().Now() - batch_dwell_started_);
    BatchHeard heard;
    heard.channel = channel;
    heard.start = end - duration;
    heard.duration = duration;
    heard.ramp = channel.width == ChannelWidth::kW5;
    batch_heard_.push_back(heard);
  });
}

std::vector<std::optional<SiftDetection>>
SimulatedScanEnvironment::SiftScanBatch(std::span<const UhfIndex> channels) {
  ScopedPhaseTimer timer(world_.profiler(), "discovery.scan");
  std::vector<std::optional<SiftDetection>> results(channels.size());
  if (channels.empty()) return results;
  EnsureBatchScanner();
  MetricsRegistry::Count(world_.metrics(), "whitefi.discovery.probes",
                         channels.size());
  {
    TraceEvent event;
    event.kind = TraceEventKind::kDiscoveryProbe;
    event.node = searcher_.NodeId();
    event.detail = "sift batch x" + std::to_string(channels.size());
    world_.TraceEventNow(std::move(event));
  }

  // One dwell covers every requested channel.
  // Freeze only the dwelt channels (one ChannelBooks per lane) instead of
  // a full 30-channel SnapshotBooks copy.
  std::vector<ChannelBooks> before(channels.size());
  for (std::size_t lane = 0; lane < channels.size(); ++lane) {
    before[lane] = world_.medium().ChannelBooksAt(channels[lane]);
  }
  batch_heard_.clear();
  batch_dwelling_ = true;
  batch_dwell_started_ = world_.sim().Now();
  world_.RunFor(ToSeconds(sift_dwell_));
  batch_dwelling_ = false;
  spent_ += sift_dwell_;

  // Per-lane burst schedules from the tapped frames.
  const Us window = ToUs(sift_dwell_);
  lane_bursts_.resize(channels.size());
  for (auto& lane : lane_bursts_) lane.clear();
  for (const BatchHeard& heard : batch_heard_) {
    for (std::size_t lane = 0; lane < channels.size(); ++lane) {
      if (!heard.channel.Contains(channels[lane])) continue;
      Burst burst;
      burst.start = std::max(0.0, heard.start);
      burst.duration = std::min(heard.duration, window - burst.start);
      burst.ramp_artifact = heard.ramp;
      if (burst.duration > 0.0) lane_bursts_[lane].push_back(burst);
    }
  }
  std::vector<std::span<const Burst>> schedules;
  schedules.reserve(channels.size());
  for (auto& lane : lane_bursts_) {
    std::sort(lane.begin(), lane.end(),
              [](const Burst& a, const Burst& b) { return a.start < b.start; });
    schedules.emplace_back(lane);
  }

  // Synthesize all lanes, classify all lanes — one call each.
  batch_synth_->SynthesizeBatchInto(schedules, window, batch_trace_);
  SiftBatch batch(SiftParams{}, channels.size());
  batch.SetObservability(world_.obs());
  const auto lane_spans = batch_trace_.LaneSpans();
  const auto detected = batch.DetectAll(lane_spans);

  // A lane detects when SIFT saw bursts in its trace and the airtime books
  // attribute target-network energy to its channel (same verdict as the
  // single-channel SiftScan, which trusts the books alone — here the
  // signal domain must concur).
  const std::vector<int> members = world_.NodesInSsid(target_ssid_);
  for (std::size_t lane = 0; lane < channels.size(); ++lane) {
    if (detected[lane].empty()) continue;
    const auto& b = before[lane].per_node;
    const auto& a =
        world_.medium().ChannelBooksAt(channels[lane]).per_node;
    for (int id : members) {
      const auto bt = b.find(id);
      const auto at = a.find(id);
      const Us before_time = bt == b.end() ? 0.0 : bt->second;
      const Us after_time = at == a.end() ? 0.0 : at->second;
      if (after_time <= before_time) continue;
      const Device* device = world_.FindDevice(id);
      if (device == nullptr) continue;
      results[lane] = SiftDetection{device->TunedChannel().width, 1};
      break;
    }
  }
  return results;
}

bool SimulatedScanEnvironment::TryDecodeBeacon(const Channel& channel) {
  ScopedPhaseTimer timer(world_.profiler(), "discovery.listen");
  MetricsRegistry::Count(world_.metrics(), "whitefi.discovery.probes");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kDiscoveryProbe;
    event.node = searcher_.NodeId();
    event.detail = "listen " + channel.ToString();
    world_.TraceEventNow(std::move(event));
  }
  searcher_.SwitchChannel(channel);
  const int before = beacons_heard_;
  world_.RunFor(ToSeconds(listen_dwell_));
  spent_ += listen_dwell_;
  return beacons_heard_ > before;
}

}  // namespace whitefi
