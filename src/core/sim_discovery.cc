#include "core/sim_discovery.h"

#include <algorithm>

namespace whitefi {

SimulatedScanEnvironment::SimulatedScanEnvironment(World& world,
                                                   Device& searcher,
                                                   int target_ssid,
                                                   SimTime sift_dwell,
                                                   SimTime listen_dwell)
    : world_(world),
      searcher_(searcher),
      target_ssid_(target_ssid),
      sift_dwell_(sift_dwell),
      listen_dwell_(listen_dwell) {
  searcher_.AddReceiveHook([this](const Frame& frame) {
    if (frame.type != FrameType::kBeacon) return;
    const auto* beacon = std::get_if<BeaconInfo>(&frame.payload);
    if (beacon != nullptr && beacon->ssid == target_ssid_) ++beacons_heard_;
  });
}

std::optional<SiftDetection> SimulatedScanEnvironment::SiftScan(UhfIndex c) {
  ScopedPhaseTimer timer(world_.profiler(), "discovery.scan");
  MetricsRegistry::Count(world_.metrics(), "whitefi.discovery.probes");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kDiscoveryProbe;
    event.node = searcher_.NodeId();
    event.detail = "sift ch" + std::to_string(c);
    world_.TraceEventNow(std::move(event));
  }
  // The secondary radio samples channel `c` for one dwell; SIFT detects
  // any WhiteFi transmission overlapping it without decoding.
  const AirtimeBooks before = world_.medium().SnapshotBooks();
  world_.RunFor(ToSeconds(sift_dwell_));
  spent_ += sift_dwell_;
  const AirtimeBooks after = world_.medium().SnapshotBooks();

  const std::vector<int> members = world_.NodesInSsid(target_ssid_);
  const auto& b = before[static_cast<std::size_t>(c)].per_node;
  const auto& a = after[static_cast<std::size_t>(c)].per_node;
  for (int id : members) {
    const auto bt = b.find(id);
    const auto at = a.find(id);
    const Us before_time = bt == b.end() ? 0.0 : bt->second;
    const Us after_time = at == a.end() ? 0.0 : at->second;
    if (after_time <= before_time) continue;
    // Energy from the target network seen on `c`: SIFT reports the exact
    // width from the Data/ACK (or beacon/CTS) timings.
    const Device* device = world_.FindDevice(id);
    if (device == nullptr) continue;
    return SiftDetection{device->TunedChannel().width, 1};
  }
  return std::nullopt;
}

bool SimulatedScanEnvironment::TryDecodeBeacon(const Channel& channel) {
  ScopedPhaseTimer timer(world_.profiler(), "discovery.listen");
  MetricsRegistry::Count(world_.metrics(), "whitefi.discovery.probes");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kDiscoveryProbe;
    event.node = searcher_.NodeId();
    event.detail = "listen " + channel.ToString();
    world_.TraceEventNow(std::move(event));
  }
  searcher_.SwitchChannel(channel);
  const int before = beacons_heard_;
  world_.RunFor(ToSeconds(listen_dwell_));
  spent_ += listen_dwell_;
  return beacons_heard_ > before;
}

}  // namespace whitefi
