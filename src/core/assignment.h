// The WhiteFi spectrum-assignment algorithm (paper Section 4.1).
//
// The AP periodically re-evaluates its channel: it ORs its own and all
// clients' spectrum maps to find the UHF channels free *everywhere*,
// evaluates the MCham-based decision metric for every candidate (F, W)
// within that availability, and selects the maximizer.  Hysteresis
// suppresses ping-ponging: a voluntary switch happens only when the best
// candidate beats the current channel's metric by a configurable factor.
#pragma once

#include <optional>
#include <vector>

#include "core/mcham.h"
#include "spectrum/channel.h"
#include "spectrum/spectrum_map.h"

namespace whitefi {

/// Everything the AP knows when deciding: its own view plus the clients'.
struct AssignmentInputs {
  SpectrumMap ap_map;
  BandObservation ap_observation;
  std::vector<SpectrumMap> client_maps;
  std::vector<BandObservation> client_observations;

  /// Bitwise OR of the AP's and all clients' maps — the channels occupied
  /// *anywhere* in the network (the paper's u').
  SpectrumMap CombinedMap() const;
};

/// Assignment configuration.
struct AssignmentParams {
  ChannelEnumerationOptions enumeration;
  /// Voluntary-switch hysteresis: the candidate's metric must exceed
  /// `hysteresis * metric(current)` (as in the DenseAP-style damping the
  /// paper cites [19]).
  double hysteresis = 1.35;
};

/// One assignment decision.
struct AssignmentDecision {
  std::optional<Channel> channel;  ///< Empty when no channel is usable.
  double metric = 0.0;             ///< Decision metric of `channel`.
  bool switched = false;           ///< True iff it differs from the current.
};

/// The spectrum assigner.
class SpectrumAssigner {
 public:
  explicit SpectrumAssigner(const AssignmentParams& params = {});

  /// Decision metric of one candidate (0 if unusable under the OR'd map).
  double EvaluateChannel(const Channel& channel,
                         const AssignmentInputs& inputs) const;

  /// Initial selection (boot, or after vacating a channel): best candidate
  /// under the combined map, no hysteresis.
  AssignmentDecision SelectInitial(const AssignmentInputs& inputs) const;

  /// Periodic re-evaluation while operating on `current`.  Applies
  /// hysteresis; if `current` itself became unusable (incumbent appeared),
  /// any usable candidate wins.
  AssignmentDecision Reevaluate(const AssignmentInputs& inputs,
                                const Channel& current) const;

  /// Picks the backup channel: the best *5 MHz* candidate that does not
  /// overlap `main` (the paper's separate 5 MHz backup channel).  Falls
  /// back to an overlapping one only if nothing else is free.
  std::optional<Channel> SelectBackup(const AssignmentInputs& inputs,
                                      const Channel& main) const;

  const AssignmentParams& params() const { return params_; }

 private:
  std::optional<Channel> BestCandidate(const AssignmentInputs& inputs,
                                       double* best_metric) const;

  AssignmentParams params_;
};

}  // namespace whitefi
