// MetricsRegistry — named counters, gauges and histograms for the whole
// simulation stack.
//
// Naming convention: `whitefi.<module>.<name>` (e.g. whitefi.mac.retries,
// whitefi.medium.tx.Data, whitefi.sift.detect_latency_us).  Units go in
// the name suffix (_us, _s, _bytes) so snapshots are self-describing.
//
// Hot-path discipline: instrumented components resolve their handles ONCE
// (at wiring time) and then increment through a raw pointer; a null
// registry yields null handles and the per-event cost is a single branch.
// The WHITEFI_METRIC_* macros wrap that branch and compile to nothing when
// WHITEFI_DISABLE_METRICS is defined.  Everything is single-threaded like
// the simulator itself; Counter::Add is a bare integer increment.
//
// Snapshots export as an aligned text table, CSV (via util/report) or a
// small JSON object, so benches can drop machine-readable metrics next to
// their paper tables.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace whitefi {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Distribution of latencies/sizes (geometric buckets, see ExpHistogram).
class Histogram {
 public:
  void Observe(double value) { histogram_.Add(value); }
  const ExpHistogram& distribution() const { return histogram_; }
  void Reset() { histogram_.Reset(); }

 private:
  ExpHistogram histogram_;
};

/// Point-in-time copy of every registered metric, ready to render.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    ExpHistogram distribution;
  };

  std::vector<CounterEntry> counters;     ///< Sorted by name.
  std::vector<GaugeEntry> gauges;         ///< Sorted by name.
  std::vector<HistogramEntry> histograms; ///< Sorted by name.

  /// Aligned human-readable table (counters, gauges, then histograms).
  std::string ToText() const;

  /// CSV rows: metric,kind,field,value (one row per exported field).
  std::string ToCsv() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

/// The registry.  Handles returned by Get* stay valid for the registry's
/// lifetime (metrics are never unregistered).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use.  Throws
  /// std::invalid_argument if the name is already a gauge or histogram.
  Counter& GetCounter(const std::string& name);

  /// Same, for gauges.
  Gauge& GetGauge(const std::string& name);

  /// Same, for histograms.
  Histogram& GetHistogram(const std::string& name);

  /// Null-safe one-shot conveniences for cold paths (one map lookup each;
  /// hot paths should cache the handle instead).
  static void Count(MetricsRegistry* registry, const std::string& name,
                    std::uint64_t n = 1);
  static void Set(MetricsRegistry* registry, const std::string& name,
                  double value);
  static void Observe(MetricsRegistry* registry, const std::string& name,
                      double value);

  /// Copies every metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric, keeping registrations (and handles) intact.
  void Reset();

  /// Number of registered metrics of any kind.
  std::size_t size() const { return kinds_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  void CheckKind(const std::string& name, Kind kind) const;

  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace whitefi

// Null-safe handle macros for instrumentation sites.  Define
// WHITEFI_DISABLE_METRICS to compile all instrumentation out.
#if defined(WHITEFI_DISABLE_METRICS)
#define WHITEFI_METRIC_COUNT(counter, n) ((void)0)
#define WHITEFI_METRIC_SET(gauge, v) ((void)0)
#define WHITEFI_METRIC_OBSERVE(histogram, v) ((void)0)
#else
#define WHITEFI_METRIC_COUNT(counter, n) \
  do {                                   \
    if ((counter) != nullptr) (counter)->Add(n); \
  } while (0)
#define WHITEFI_METRIC_SET(gauge, v) \
  do {                               \
    if ((gauge) != nullptr) (gauge)->Set(v); \
  } while (0)
#define WHITEFI_METRIC_OBSERVE(histogram, v) \
  do {                                       \
    if ((histogram) != nullptr) (histogram)->Observe(v); \
  } while (0)
#endif
