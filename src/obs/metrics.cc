#include "obs/metrics.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/report.h"

namespace whitefi {
namespace {

const char* KindLabel(bool counter, bool gauge) {
  return counter ? "counter" : gauge ? "gauge" : "histogram";
}

/// Minimal JSON string escaping (names/units are plain ASCII in practice).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::CheckKind(const std::string& name, Kind kind) const {
  const auto it = kinds_.find(name);
  if (it != kinds_.end() && it->second != kind) {
    throw std::invalid_argument(
        "metric name '" + name + "' already registered as a " +
        KindLabel(it->second == Kind::kCounter, it->second == Kind::kGauge));
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  CheckKind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    kinds_.emplace(name, Kind::kCounter);
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  CheckKind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    kinds_.emplace(name, Kind::kGauge);
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  CheckKind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    kinds_.emplace(name, Kind::kHistogram);
  }
  return *slot;
}

void MetricsRegistry::Count(MetricsRegistry* registry, const std::string& name,
                            std::uint64_t n) {
  if (registry != nullptr) registry->GetCounter(name).Add(n);
}

void MetricsRegistry::Set(MetricsRegistry* registry, const std::string& name,
                          double value) {
  if (registry != nullptr) registry->GetGauge(name).Set(value);
}

void MetricsRegistry::Observe(MetricsRegistry* registry,
                              const std::string& name, double value) {
  if (registry != nullptr) registry->GetHistogram(name).Observe(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->distribution()});
  }
  return snapshot;  // std::map iteration is already name-sorted.
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  if (!counters.empty() || !gauges.empty()) {
    Table table({"metric", "kind", "value"});
    for (const auto& c : counters) {
      table.AddRow({c.name, "counter", std::to_string(c.value)});
    }
    for (const auto& g : gauges) {
      table.AddRow({g.name, "gauge", FormatDouble(g.value, 4)});
    }
    os << table.ToString();
  }
  if (!histograms.empty()) {
    if (!counters.empty() || !gauges.empty()) os << "\n";
    Table table({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& h : histograms) {
      const ExpHistogram& d = h.distribution;
      table.AddRow({h.name, std::to_string(d.Count()),
                    FormatDouble(d.Mean(), 2), FormatDouble(d.Percentile(50), 2),
                    FormatDouble(d.Percentile(90), 2),
                    FormatDouble(d.Percentile(99), 2),
                    FormatDouble(d.Max(), 2)});
    }
    os << table.ToString();
  }
  return os.str();
}

std::string MetricsSnapshot::ToCsv() const {
  Table table({"metric", "kind", "field", "value"});
  for (const auto& c : counters) {
    table.AddRow({c.name, "counter", "value", std::to_string(c.value)});
  }
  for (const auto& g : gauges) {
    table.AddRow({g.name, "gauge", "value", FormatDouble(g.value, 6)});
  }
  for (const auto& h : histograms) {
    const ExpHistogram& d = h.distribution;
    table.AddRow({h.name, "histogram", "count", std::to_string(d.Count())});
    table.AddRow({h.name, "histogram", "sum", FormatDouble(d.Sum(), 6)});
    table.AddRow({h.name, "histogram", "mean", FormatDouble(d.Mean(), 6)});
    table.AddRow({h.name, "histogram", "min", FormatDouble(d.Min(), 6)});
    table.AddRow({h.name, "histogram", "p50", FormatDouble(d.Percentile(50), 6)});
    table.AddRow({h.name, "histogram", "p90", FormatDouble(d.Percentile(90), 6)});
    table.AddRow({h.name, "histogram", "p99", FormatDouble(d.Percentile(99), 6)});
    table.AddRow({h.name, "histogram", "max", FormatDouble(d.Max(), 6)});
  }
  return table.ToCsv();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(counters[i].name) << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(gauges[i].name) << "\":" << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) os << ",";
    const ExpHistogram& d = histograms[i].distribution;
    os << "\"" << JsonEscape(histograms[i].name) << "\":{"
       << "\"count\":" << d.Count() << ",\"sum\":" << d.Sum()
       << ",\"mean\":" << d.Mean() << ",\"min\":" << d.Min()
       << ",\"p50\":" << d.Percentile(50) << ",\"p90\":" << d.Percentile(90)
       << ",\"p99\":" << d.Percentile(99) << ",\"max\":" << d.Max()
       << ",\"buckets\":[";
    const auto buckets = d.NonEmptyBuckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b > 0) os << ",";
      os << "[" << buckets[b].lo << "," << buckets[b].hi << ","
         << buckets[b].count << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace whitefi
