// Observability — the pointer bundle threaded through the simulation.
//
// One struct instead of three parameters everywhere: WorldConfig embeds an
// Observability, World hands it to Medium/Mac/devices, bench::ScenarioConfig
// copies one in.  All pointers are optional and non-owning; the default
// (all null) makes every instrumentation site a dead branch.
#pragma once

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"

namespace whitefi {

struct Observability {
  MetricsRegistry* metrics = nullptr;
  EventTrace* trace = nullptr;
  PhaseProfiler* profiler = nullptr;
};

}  // namespace whitefi
