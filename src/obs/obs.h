// Observability — the pointer bundle threaded through the simulation.
//
// One struct instead of three parameters everywhere: WorldConfig embeds an
// Observability, World hands it to Medium/Mac/devices, bench::ScenarioConfig
// copies one in.  All pointers are optional and non-owning; the default
// (all null) makes every instrumentation site a dead branch.
#pragma once

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/state_timeline.h"

namespace whitefi {

class AuditHooks;  // sim/audit_hooks.h — runtime invariant checking seams.

struct Observability {
  MetricsRegistry* metrics = nullptr;
  EventTrace* trace = nullptr;
  PhaseProfiler* profiler = nullptr;
  /// Per-node protocol-state intervals (see World::RecordState).
  StateTimeline* timeline = nullptr;
  /// Runtime invariant auditor (see src/audit).  Like the sinks above it
  /// is non-owning and null by default; hook sites cost one branch.
  AuditHooks* auditor = nullptr;
};

}  // namespace whitefi
