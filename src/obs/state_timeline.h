// StateTimeline — exact per-node protocol-state interval accounting.
//
// Every node reports its protocol state transitions (client: connected /
// chirping / escalated; AP: operating / collecting / announcing /
// rescuing) through World::RecordState.  The timeline closes the node's
// previous interval at the transition instant and opens a new one, so the
// per-state durations partition simulated time exactly: for any node,
// the sum of its interval lengths equals last-transition minus
// first-transition, with no gaps and no double counting.
//
// World::RecordState also emits a kStateEnter trace event at the same
// instant, which is what makes the trace_lens per-phase breakdown agree
// with this recorder to the tick (tested in flight_recorder_test).
//
// Attached through Observability (obs/obs.h); null pointer = zero cost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace whitefi {

/// One closed (or still-open) state interval on one node.
struct StateInterval {
  int node = -1;
  std::string state;
  std::int64_t begin_us = 0;
  /// End tick; equals begin of the next interval for the node.  Open
  /// intervals keep kOpen until Close() stamps the final time.
  std::int64_t end_us = kOpen;

  static constexpr std::int64_t kOpen = -1;

  std::int64_t DurationUs() const {
    return end_us == kOpen ? 0 : end_us - begin_us;
  }

  bool operator==(const StateInterval&) const = default;
};

/// The recorder.
class StateTimeline {
 public:
  /// Node `node` enters `state` at tick `at_us`.  Closes the node's open
  /// interval (if any) at the same tick.  Re-entering the current state
  /// is a no-op so callers can report unconditionally.
  void Enter(std::int64_t at_us, int node, std::string_view state);

  /// Closes every open interval at `at_us` (end of run).
  void Close(std::int64_t at_us);

  /// All intervals in transition order (closed ones first come first;
  /// at most one open interval per node at the tail).
  const std::vector<StateInterval>& intervals() const { return intervals_; }

  /// Sum of closed-interval durations for (node, state).  Call Close()
  /// first to include time accrued in the final state.
  std::int64_t TotalIn(int node, std::string_view state) const;

  /// The state `node` is currently in; empty if it never reported.
  std::string_view CurrentState(int node) const;

  /// Nodes that reported at least one transition, ascending.
  std::vector<int> Nodes() const;

  /// Drops everything.
  void Clear();

 private:
  std::vector<StateInterval> intervals_;
  /// node -> index into intervals_ of its open interval.
  std::map<int, std::size_t> open_;
};

}  // namespace whitefi
