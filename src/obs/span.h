// Span model — reconstructing causal intervals from a flat event trace.
//
// Instrumentation emits kSpanBegin/kSpanEnd pairs (same span_id) around
// protocol chains: a client recovery, an AP incumbent-handling episode,
// an MCham assignment decision.  This header rebuilds those pairs into
// Span values and derives the analysis trace_lens prints: per-recovery
// phase breakdowns (from kStateEnter events, so the numbers agree with
// StateTimeline exactly) and root-cause attribution joining each
// recovery span to the fault / incumbent / AP-switch event that
// triggered it.  Shared between examples/trace_lens.cpp and the tests
// so the acceptance numbers are pinned in-process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_trace.h"

namespace whitefi {

/// One reconstructed span.
struct Span {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::int64_t flow = 0;
  int node = -1;
  std::string name;
  std::int64_t begin_us = 0;
  std::int64_t end_us = kOpen;  ///< kOpen when the trace ended mid-span.

  static constexpr std::int64_t kOpen = -1;

  bool Closed() const { return end_us != kOpen; }
  std::int64_t DurationUs() const { return Closed() ? end_us - begin_us : 0; }
};

/// Pairs kSpanBegin/kSpanEnd events by span_id, in begin order.
std::vector<Span> BuildSpans(const std::vector<TraceEvent>& events);

/// Splits a concatenated multi-run capture (e.g. one EventTrace shared by
/// every adaptive run of a bench sweep) into per-run segments at the
/// points where simulated time restarts — trace records are append-ordered
/// and sim time never decreases within one world, so a backwards jump can
/// only be a new run.  A single-run trace comes back as one segment;
/// empty input yields no segments.  Span ids and node ids repeat across
/// runs, so every analysis must stay within one segment.
std::vector<std::vector<TraceEvent>> SplitRuns(
    const std::vector<TraceEvent>& events);

/// Time a recovery spent in one protocol state (e.g. "chirping").
struct RecoveryPhase {
  std::string state;
  std::int64_t duration_us = 0;

  bool operator==(const RecoveryPhase&) const = default;
};

/// One client recovery span with its breakdown and attributed cause.
struct Recovery {
  Span span;                   ///< Name starts with "client.recovery".
  std::string declared_cause;  ///< Suffix the client stamped: "incumbent"
                               ///< or "lost_contact".
  /// Resolved root cause: "incumbent" (flow-joined or temporal),
  /// "fault", "ap_switch", or "unknown".
  std::string cause_kind = "unknown";
  std::int64_t cause_at_us = -1;  ///< Timestamp of the triggering event.
  std::string cause_detail;       ///< Detail of the triggering event.
  /// Per-state time within the span window, in state-entry order.  The
  /// durations sum to the span duration exactly (states only change at
  /// disconnect / escalate / reconnect instants).
  std::vector<RecoveryPhase> phases;
};

/// Attribution tuning.
struct AnalyzeOptions {
  /// How far before a lost-contact disconnect a cause may fire.  Covers
  /// the client contact timeout plus its contact-check period.
  std::int64_t cause_window_us = 3'000'000;
};

/// The full derived view of one trace.
struct TraceAnalysis {
  std::vector<Span> spans;
  std::vector<Recovery> recoveries;
  /// Nodes that behaved as APs (emitted AP spans or AP states).
  std::vector<int> ap_nodes;
};

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events,
                           const AnalyzeOptions& options = {});

/// Exact nearest-rank percentile of `values` (not required sorted);
/// p in [0, 100].  Returns 0 when empty.
double ExactPercentile(std::vector<double> values, double p);

}  // namespace whitefi
