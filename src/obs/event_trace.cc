#include "obs/event_trace.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace whitefi {
namespace {

constexpr const char* kKindNames[kNumTraceEventKinds] = {
    "frame_tx",     "frame_rx",     "frame_drop",  "mac_backoff",
    "mac_retry",    "channel_switch", "incumbent_on", "incumbent_off",
    "chirp",        "discovery_probe", "fault_injected", "fault_cleared",
    "invariant_violation", "note", "span_begin", "span_end", "state_enter",
    "geodb_degraded", "geodb_recovered",
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEventJson(std::ostream& os, const TraceEvent& e) {
  os << "{\"t\":" << e.at_us << ",\"kind\":\"" << TraceEventKindName(e.kind)
     << "\"";
  if (e.node != -1) os << ",\"node\":" << e.node;
  if (e.src != -1) os << ",\"src\":" << e.src;
  if (e.dst != -1) os << ",\"dst\":" << e.dst;
  if (e.bytes != 0) os << ",\"bytes\":" << e.bytes;
  if (e.span_id != 0) os << ",\"span\":" << e.span_id;
  if (e.parent_span != 0) os << ",\"parent\":" << e.parent_span;
  if (e.flow_id != 0) os << ",\"flow\":" << e.flow_id;
  if (!e.frame_type.empty()) {
    os << ",\"frame\":\"" << JsonEscape(e.frame_type) << "\"";
  }
  if (!e.detail.empty()) os << ",\"detail\":\"" << JsonEscape(e.detail) << "\"";
  os << "}";
}

/// Tiny parser for the flat objects AppendEventJson emits.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  TraceEvent Parse() {
    TraceEvent event;
    SkipWs();
    Expect('{');
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return event;
    }
    while (true) {
      SkipWs();
      const std::string key = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      if (key == "kind") {
        const std::string name = ParseString();
        const auto kind = ParseTraceEventKind(name);
        if (!kind.has_value()) Fail("unknown kind '" + name + "'");
        event.kind = *kind;
      } else if (key == "frame") {
        event.frame_type = ParseString();
      } else if (key == "detail") {
        event.detail = ParseString();
      } else if (key == "t") {
        event.at_us = ParseInt();
      } else if (key == "node") {
        event.node = static_cast<int>(ParseInt());
      } else if (key == "src") {
        event.src = static_cast<int>(ParseInt());
      } else if (key == "dst") {
        event.dst = static_cast<int>(ParseInt());
      } else if (key == "bytes") {
        event.bytes = static_cast<int>(ParseInt());
      } else if (key == "span") {
        event.span_id = ParseInt();
      } else if (key == "parent") {
        event.parent_span = ParseInt();
      } else if (key == "flow") {
        event.flow_id = ParseInt();
      } else {
        Fail("unknown key '" + key + "'");
      }
      SkipWs();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') Fail("expected ',' or '}'");
    }
    return event;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("bad trace JSONL at column " +
                             std::to_string(pos_) + ": " + why + " in: " + s_);
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char Next() {
    if (pos_ >= s_.size()) Fail("unexpected end");
    return s_[pos_++];
  }
  void Expect(char c) {
    if (Next() != c) Fail(std::string("expected '") + c + "'");
  }
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      char c = Next();
      if (c == '"') return out;
      if (c == '\\') {
        c = Next();
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = Next();
              code = code * 16 +
                     (h >= '0' && h <= '9'   ? h - '0'
                      : h >= 'a' && h <= 'f' ? h - 'a' + 10
                      : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                             : (Fail("bad \\u escape"), 0));
            }
            out += static_cast<char>(code);
            break;
          }
          default: out += c;
        }
      } else {
        out += c;
      }
    }
  }
  std::int64_t ParseInt() {
    const bool negative = Peek() == '-';
    if (negative) ++pos_;
    if (Peek() < '0' || Peek() > '9') Fail("expected digit");
    std::int64_t value = 0;
    while (Peek() >= '0' && Peek() <= '9') {
      value = value * 10 + (Next() - '0');
    }
    return negative ? -value : value;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kNumTraceEventKinds ? kKindNames[index] : "?";
}

std::optional<TraceEventKind> ParseTraceEventKind(std::string_view name) {
  for (int i = 0; i < kNumTraceEventKinds; ++i) {
    if (name == kKindNames[i]) return static_cast<TraceEventKind>(i);
  }
  return std::nullopt;
}

EventTrace::EventTrace(const EventTraceOptions& options) : options_(options) {
  if (options_.only.empty()) {
    wants_.fill(true);
  } else {
    for (TraceEventKind kind : options_.only) {
      const auto index = static_cast<std::size_t>(kind);
      if (index < wants_.size()) wants_[index] = true;
    }
  }
}

void EventTrace::Append(TraceEvent event) {
  ++total_;
  const auto index = static_cast<std::size_t>(event.kind);
  if (index < counts_.size()) ++counts_[index];
  if (!Wants(event.kind)) return;
  if (events_.size() >= options_.max_events) {
    if (!options_.keep_last) {
      // Stop-at-cap: the record is wanted but lost.
      if (index < dropped_.size()) ++dropped_[index];
      return;
    }
    const auto evicted = static_cast<std::size_t>(events_.front().kind);
    if (evicted < dropped_.size()) ++dropped_[evicted];
    events_.pop_front();
  }
  events_.push_back(std::move(event));
}

std::size_t EventTrace::CountOf(TraceEventKind kind) const {
  const auto index = static_cast<std::size_t>(kind);
  return index < counts_.size() ? counts_[index] : 0;
}

std::size_t EventTrace::DroppedOf(TraceEventKind kind) const {
  const auto index = static_cast<std::size_t>(kind);
  return index < dropped_.size() ? dropped_[index] : 0;
}

std::size_t EventTrace::TotalDropped() const {
  std::size_t total = 0;
  for (std::size_t n : dropped_) total += n;
  return total;
}

void EventTrace::Clear() {
  events_.clear();
  counts_.fill(0);
  dropped_.fill(0);
  total_ = 0;
}

void EventTrace::WriteJsonl(std::ostream& os) const {
  if (TotalDropped() > 0) {
    // Truncation is never silent: lead with the per-kind dropped counts.
    os << "{\"meta\":\"event_trace\",\"dropped\":" << TotalDropped()
       << ",\"dropped_by_kind\":{";
    bool first = true;
    for (int i = 0; i < kNumTraceEventKinds; ++i) {
      if (dropped_[static_cast<std::size_t>(i)] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << kKindNames[i]
         << "\":" << dropped_[static_cast<std::size_t>(i)];
    }
    os << "}}\n";
  }
  for (const TraceEvent& event : events_) {
    AppendEventJson(os, event);
    os << "\n";
  }
}

std::string EventTrace::ToJsonl() const {
  std::ostringstream os;
  WriteJsonl(os);
  return os.str();
}

std::vector<TraceEvent> EventTrace::ReadJsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("{\"meta\"", 0) == 0) continue;  // Dropped-count header.
    events.push_back(LineParser(line).Parse());
  }
  return events;
}

void EventTrace::WriteChromeTrace(std::ostream& os) const {
  // One timeline row per node; world-level events (mic transitions) land
  // on row -1 so they bracket everything.  Span begin/end pairs render as
  // "B"/"E" duration slices; any event carrying a flow_id additionally
  // emits a flow step ("s" at the first occurrence of the id, "f" at the
  // last, "t" in between) so causal chains draw as arrows across rows.
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> flow_span;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const std::int64_t flow = events_[i].flow_id;
    if (flow == 0) continue;
    auto [it, inserted] = flow_span.try_emplace(flow, i, i);
    if (!inserted) it->second.second = i;
  }
  os << "[";
  bool first = true;
  auto begin_record = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  if (TotalDropped() > 0) {
    begin_record();
    const std::int64_t ts = events_.empty() ? 0 : events_.front().at_us;
    os << "{\"name\":\"trace_dropped\",\"cat\":\"meta\",\"ph\":\"i\","
          "\"s\":\"g\",\"pid\":0,\"tid\":-1,\"ts\":"
       << ts << ",\"args\":{\"dropped\":" << TotalDropped();
    for (int i = 0; i < kNumTraceEventKinds; ++i) {
      if (dropped_[static_cast<std::size_t>(i)] == 0) continue;
      os << ",\"" << kKindNames[i]
         << "\":" << dropped_[static_cast<std::size_t>(i)];
    }
    os << "}}";
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    begin_record();
    const bool span_begin = e.kind == TraceEventKind::kSpanBegin;
    const bool span_end = e.kind == TraceEventKind::kSpanEnd;
    os << "{\"name\":\"";
    if (span_begin || span_end) {
      os << (e.detail.empty() ? "span" : JsonEscape(e.detail));
    } else if (!e.frame_type.empty()) {
      os << JsonEscape(e.frame_type) << " " << TraceEventKindName(e.kind);
    } else {
      os << TraceEventKindName(e.kind);
    }
    os << "\",\"cat\":\""
       << (span_begin || span_end ? "span" : TraceEventKindName(e.kind))
       << "\",\"ph\":\""
       << (span_begin ? "B" : span_end ? "E" : "i") << "\"";
    if (!span_begin && !span_end) os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << e.node << ",\"ts\":" << e.at_us
       << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, const std::string& value, bool quote) {
      if (!first_arg) os << ",";
      first_arg = false;
      os << "\"" << key << "\":";
      if (quote) {
        os << "\"" << JsonEscape(value) << "\"";
      } else {
        os << value;
      }
    };
    if (e.src != -1) arg("src", std::to_string(e.src), false);
    if (e.dst != -1) arg("dst", std::to_string(e.dst), false);
    if (e.bytes != 0) arg("bytes", std::to_string(e.bytes), false);
    if (e.span_id != 0) arg("span", std::to_string(e.span_id), false);
    if (e.parent_span != 0) arg("parent", std::to_string(e.parent_span), false);
    if (e.flow_id != 0) arg("flow", std::to_string(e.flow_id), false);
    if ((span_begin || span_end) && !e.detail.empty()) {
      // Name already carries the detail; skip the redundant arg.
    } else if (!e.detail.empty()) {
      arg("detail", e.detail, true);
    }
    os << "}}";
    if (e.flow_id != 0) {
      const auto [first_idx, last_idx] = flow_span.at(e.flow_id);
      const char* ph = i == first_idx ? "s" : i == last_idx ? "f" : "t";
      begin_record();
      os << "{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"" << ph
         << "\",\"id\":" << e.flow_id << ",\"pid\":0,\"tid\":" << e.node
         << ",\"ts\":" << e.at_us;
      if (*ph == 'f') os << ",\"bp\":\"e\"";
      os << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace whitefi
