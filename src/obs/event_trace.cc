#include "obs/event_trace.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace whitefi {
namespace {

constexpr const char* kKindNames[kNumTraceEventKinds] = {
    "frame_tx",     "frame_rx",     "frame_drop",  "mac_backoff",
    "mac_retry",    "channel_switch", "incumbent_on", "incumbent_off",
    "chirp",        "discovery_probe", "fault_injected", "fault_cleared",
    "invariant_violation", "note",
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEventJson(std::ostream& os, const TraceEvent& e) {
  os << "{\"t\":" << e.at_us << ",\"kind\":\"" << TraceEventKindName(e.kind)
     << "\"";
  if (e.node != -1) os << ",\"node\":" << e.node;
  if (e.src != -1) os << ",\"src\":" << e.src;
  if (e.dst != -1) os << ",\"dst\":" << e.dst;
  if (e.bytes != 0) os << ",\"bytes\":" << e.bytes;
  if (!e.frame_type.empty()) {
    os << ",\"frame\":\"" << JsonEscape(e.frame_type) << "\"";
  }
  if (!e.detail.empty()) os << ",\"detail\":\"" << JsonEscape(e.detail) << "\"";
  os << "}";
}

/// Tiny parser for the flat objects AppendEventJson emits.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  TraceEvent Parse() {
    TraceEvent event;
    SkipWs();
    Expect('{');
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return event;
    }
    while (true) {
      SkipWs();
      const std::string key = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      if (key == "kind") {
        const std::string name = ParseString();
        const auto kind = ParseTraceEventKind(name);
        if (!kind.has_value()) Fail("unknown kind '" + name + "'");
        event.kind = *kind;
      } else if (key == "frame") {
        event.frame_type = ParseString();
      } else if (key == "detail") {
        event.detail = ParseString();
      } else if (key == "t") {
        event.at_us = ParseInt();
      } else if (key == "node") {
        event.node = static_cast<int>(ParseInt());
      } else if (key == "src") {
        event.src = static_cast<int>(ParseInt());
      } else if (key == "dst") {
        event.dst = static_cast<int>(ParseInt());
      } else if (key == "bytes") {
        event.bytes = static_cast<int>(ParseInt());
      } else {
        Fail("unknown key '" + key + "'");
      }
      SkipWs();
      const char c = Next();
      if (c == '}') break;
      if (c != ',') Fail("expected ',' or '}'");
    }
    return event;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("bad trace JSONL at column " +
                             std::to_string(pos_) + ": " + why + " in: " + s_);
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char Next() {
    if (pos_ >= s_.size()) Fail("unexpected end");
    return s_[pos_++];
  }
  void Expect(char c) {
    if (Next() != c) Fail(std::string("expected '") + c + "'");
  }
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }
  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      char c = Next();
      if (c == '"') return out;
      if (c == '\\') {
        c = Next();
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = Next();
              code = code * 16 +
                     (h >= '0' && h <= '9'   ? h - '0'
                      : h >= 'a' && h <= 'f' ? h - 'a' + 10
                      : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                             : (Fail("bad \\u escape"), 0));
            }
            out += static_cast<char>(code);
            break;
          }
          default: out += c;
        }
      } else {
        out += c;
      }
    }
  }
  std::int64_t ParseInt() {
    const bool negative = Peek() == '-';
    if (negative) ++pos_;
    if (Peek() < '0' || Peek() > '9') Fail("expected digit");
    std::int64_t value = 0;
    while (Peek() >= '0' && Peek() <= '9') {
      value = value * 10 + (Next() - '0');
    }
    return negative ? -value : value;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kNumTraceEventKinds ? kKindNames[index] : "?";
}

std::optional<TraceEventKind> ParseTraceEventKind(std::string_view name) {
  for (int i = 0; i < kNumTraceEventKinds; ++i) {
    if (name == kKindNames[i]) return static_cast<TraceEventKind>(i);
  }
  return std::nullopt;
}

EventTrace::EventTrace(const EventTraceOptions& options) : options_(options) {}

void EventTrace::Append(TraceEvent event) {
  ++total_;
  const auto index = static_cast<std::size_t>(event.kind);
  if (index < counts_.size()) ++counts_[index];
  if (!options_.only.empty() &&
      std::find(options_.only.begin(), options_.only.end(), event.kind) ==
          options_.only.end()) {
    return;
  }
  if (events_.size() >= options_.max_events) {
    if (!options_.keep_last) return;
    events_.pop_front();
  }
  events_.push_back(std::move(event));
}

std::size_t EventTrace::CountOf(TraceEventKind kind) const {
  const auto index = static_cast<std::size_t>(kind);
  return index < counts_.size() ? counts_[index] : 0;
}

void EventTrace::Clear() {
  events_.clear();
  counts_.fill(0);
  total_ = 0;
}

void EventTrace::WriteJsonl(std::ostream& os) const {
  for (const TraceEvent& event : events_) {
    AppendEventJson(os, event);
    os << "\n";
  }
}

std::string EventTrace::ToJsonl() const {
  std::ostringstream os;
  WriteJsonl(os);
  return os.str();
}

std::vector<TraceEvent> EventTrace::ReadJsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    events.push_back(LineParser(line).Parse());
  }
  return events;
}

void EventTrace::WriteChromeTrace(std::ostream& os) const {
  // Instant events, one timeline row per node; world-level events (mic
  // transitions) land on row -1 so they bracket everything.
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    if (!e.frame_type.empty()) {
      os << JsonEscape(e.frame_type) << " " << TraceEventKindName(e.kind);
    } else {
      os << TraceEventKindName(e.kind);
    }
    os << "\",\"cat\":\"" << TraceEventKindName(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.node
       << ",\"ts\":" << e.at_us << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, const std::string& value, bool quote) {
      if (!first_arg) os << ",";
      first_arg = false;
      os << "\"" << key << "\":";
      if (quote) {
        os << "\"" << JsonEscape(value) << "\"";
      } else {
        os << value;
      }
    };
    if (e.src != -1) arg("src", std::to_string(e.src), false);
    if (e.dst != -1) arg("dst", std::to_string(e.dst), false);
    if (e.bytes != 0) arg("bytes", std::to_string(e.bytes), false);
    if (!e.detail.empty()) arg("detail", e.detail, true);
    os << "}}";
  }
  os << "\n]\n";
}

}  // namespace whitefi
