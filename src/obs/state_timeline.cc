#include "obs/state_timeline.h"

#include <algorithm>

namespace whitefi {

void StateTimeline::Enter(std::int64_t at_us, int node,
                          std::string_view state) {
  const auto it = open_.find(node);
  if (it != open_.end()) {
    StateInterval& current = intervals_[it->second];
    if (current.state == state) return;  // Re-entry: nothing changed.
    current.end_us = at_us;
  }
  StateInterval next;
  next.node = node;
  next.state = std::string(state);
  next.begin_us = at_us;
  open_[node] = intervals_.size();
  intervals_.push_back(std::move(next));
}

void StateTimeline::Close(std::int64_t at_us) {
  for (const auto& [node, index] : open_) {
    intervals_[index].end_us = at_us;
  }
  open_.clear();
}

std::int64_t StateTimeline::TotalIn(int node, std::string_view state) const {
  std::int64_t total = 0;
  for (const StateInterval& interval : intervals_) {
    if (interval.node == node && interval.state == state) {
      total += interval.DurationUs();
    }
  }
  return total;
}

std::string_view StateTimeline::CurrentState(int node) const {
  // Transition order means the node's last interval is its newest; a
  // Close() does not change what state the node is in.
  for (auto it = intervals_.rbegin(); it != intervals_.rend(); ++it) {
    if (it->node == node) return it->state;
  }
  return {};
}

std::vector<int> StateTimeline::Nodes() const {
  std::vector<int> nodes;
  for (const StateInterval& interval : intervals_) {
    if (std::find(nodes.begin(), nodes.end(), interval.node) == nodes.end()) {
      nodes.push_back(interval.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

void StateTimeline::Clear() {
  intervals_.clear();
  open_.clear();
}

}  // namespace whitefi
