#include "obs/phase_timer.h"

#include <algorithm>

#include "util/report.h"

namespace whitefi {

std::string PhaseProfiler::ToString(double sim_seconds) const {
  std::vector<const std::map<std::string, PhaseStats>::value_type*> rows;
  rows.reserve(phases_.size());
  for (const auto& entry : phases_) rows.push_back(&entry);
  std::stable_sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.total_us > b->second.total_us;
  });

  std::vector<std::string> headers = {"phase",   "calls",   "total_ms",
                                      "self_ms", "mean_us", "max_us"};
  if (sim_seconds > 0.0) headers.push_back("ms_per_sim_s");
  Table table(headers);
  for (const auto* entry : rows) {
    const PhaseStats& s = entry->second;
    std::vector<std::string> row = {
        entry->first,
        std::to_string(s.count),
        FormatDouble(s.total_us / 1000.0, 3),
        FormatDouble(s.self_us / 1000.0, 3),
        FormatDouble(s.count == 0 ? 0.0 : s.total_us / s.count, 2),
        FormatDouble(s.max_us, 2)};
    if (sim_seconds > 0.0) {
      row.push_back(FormatDouble(s.total_us / 1000.0 / sim_seconds, 3));
    }
    table.AddRow(row);
  }
  return table.ToString();
}

}  // namespace whitefi
