// EventTrace — typed, structured simulation events.
//
// Where sim/tracer.h is a human-readable tcpdump (free-form lines), this
// is the machine-readable upgrade: every interesting protocol moment is a
// typed record keyed on simulated time — frame TX/RX/drop, MAC backoff and
// retry, channel switches, incumbent (mic) appearances, chirps, discovery
// probes.  Records serialize as JSONL (one JSON object per line, exact
// round-trip via ReadJsonl) and as the Chrome trace-event format, so a run
// can be dropped straight into chrome://tracing with one timeline row per
// node.
//
// The trace is attached through WorldConfig (see Observability in
// obs/obs.h); a null trace pointer costs instrumentation sites one branch.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace whitefi {

/// What happened.
enum class TraceEventKind {
  kFrameTx = 0,      ///< A transmission completed on air.
  kFrameRx,          ///< A frame was decoded and delivered at a node.
  kFrameDrop,        ///< A frame was lost (SINR failure / retry limit).
  kMacBackoff,       ///< A MAC drew a fresh backoff for a frame.
  kMacRetry,         ///< A unicast attempt timed out and will be retried.
  kChannelSwitch,    ///< A node retuned its main radio.
  kIncumbentOn,      ///< An incumbent (wireless mic) switched on.
  kIncumbentOff,     ///< An incumbent switched off.
  kChirp,            ///< A disconnection chirp was sent or heard.
  kDiscoveryProbe,   ///< A discovery scan probe (SIFT dwell / beacon listen).
  kFaultInjected,    ///< A fault-injection point fired (see src/fault).
  kFaultCleared,     ///< A windowed fault ended / burst state recovered.
  kInvariantViolation,  ///< The InvariantAuditor flagged a violation.
  kNote,             ///< Free-form milestone.
  kSpanBegin,        ///< A causal span opened (detail = span name).
  kSpanEnd,          ///< A causal span closed (same span_id as the begin).
  kStateEnter,       ///< A node entered a protocol state (detail = state).
  kGeoDbDegraded,    ///< A geo-db session fell back to conservative data.
  kGeoDbRecovered,   ///< A geo-db session returned to fresh data.
};

inline constexpr int kNumTraceEventKinds = 19;

/// Stable wire name, e.g. "frame_tx".
const char* TraceEventKindName(TraceEventKind kind);

/// Inverse of TraceEventKindName; nullopt for unknown names.
std::optional<TraceEventKind> ParseTraceEventKind(std::string_view name);

/// One structured record.  Unused fields keep their defaults and are
/// omitted from the JSONL encoding.
struct TraceEvent {
  std::int64_t at_us = 0;  ///< Simulated time, microsecond ticks.
  TraceEventKind kind = TraceEventKind::kNote;
  int node = -1;           ///< Acting node id (-1: the world itself).
  int src = -1;            ///< Frame source (frame events).
  int dst = -1;            ///< Frame destination (-1 = broadcast).
  int bytes = 0;           ///< Frame size / event magnitude.
  // Causal identifiers (0 = unset).  A span is a named interval on one
  // node (kSpanBegin/kSpanEnd share span_id; parent_span nests child
  // phases under it).  A flow threads one causal chain across nodes —
  // e.g. mic-on -> client disconnect -> chirps -> AP rescue -> reconnect
  // all carry the same flow_id, and the Chrome export renders the chain
  // as arrows.  Ids come from World::NextTraceId (deterministic).
  std::int64_t span_id = 0;
  std::int64_t parent_span = 0;
  std::int64_t flow_id = 0;
  std::string frame_type;  ///< FrameTypeName for frame events, else empty.
  std::string detail;      ///< Channel string or free text.

  bool operator==(const TraceEvent&) const = default;
};

/// Capture options.
struct EventTraceOptions {
  /// Record cap.  Per-kind counts stay exact beyond it.
  std::size_t max_events = 1 << 20;
  /// When true the cap acts as a ring buffer (oldest records evicted);
  /// when false, recording stops at the cap.
  bool keep_last = false;
  /// Kinds to record; empty = all.  Counts still include filtered kinds.
  std::vector<TraceEventKind> only;
};

/// The trace buffer.
class EventTrace {
 public:
  explicit EventTrace(const EventTraceOptions& options = {});

  /// Appends one record (subject to the kind filter and the cap).
  void Append(TraceEvent event);

  /// True when the kind filter admits `kind`.  Hot instrumentation sites
  /// check this before building detail strings; when it returns false
  /// they call CountSkipped instead, which keeps the exact per-kind
  /// counts identical to a full Append of a filtered-out event.
  bool Wants(TraceEventKind kind) const {
    const auto index = static_cast<std::size_t>(kind);
    return index < wants_.size() && wants_[index];
  }

  /// Accounts for an event of `kind` that a hot site chose not to build
  /// because Wants(kind) is false.  Equivalent to Append for counting.
  void CountSkipped(TraceEventKind kind) {
    ++total_;
    const auto index = static_cast<std::size_t>(kind);
    if (index < counts_.size()) ++counts_[index];
  }

  /// Records currently held (capped / ring-buffered).
  const std::deque<TraceEvent>& events() const { return events_; }

  /// Number of events offered to Append since construction (exact, not
  /// affected by the cap or the kind filter).
  std::size_t TotalSeen() const { return total_; }

  /// Exact per-kind count (also unaffected by cap and filter).
  std::size_t CountOf(TraceEventKind kind) const;

  /// Events of `kind` that passed the filter but were lost to the cap —
  /// ring-mode evictions or stop-at-cap skips.  Kinds rejected by the
  /// filter are not drops: the caller opted out of them.
  std::size_t DroppedOf(TraceEventKind kind) const;

  /// Total events lost to the cap across all kinds.
  std::size_t TotalDropped() const;

  /// Drops all buffered records and zeroes the counts.
  void Clear();

  /// JSONL: one compact JSON object per line.  When the cap dropped
  /// records, the first line is a `{"meta":"event_trace",...}` header
  /// carrying the per-kind dropped counts so truncation is never silent;
  /// ReadJsonl skips it.
  void WriteJsonl(std::ostream& os) const;
  std::string ToJsonl() const;

  /// Parses WriteJsonl output back into records (exact round-trip).
  /// Skips meta header lines.  Throws std::runtime_error on malformed
  /// lines.
  static std::vector<TraceEvent> ReadJsonl(std::istream& is);

  /// Chrome trace-event format (JSON array, ts in microseconds of
  /// simulated time, one timeline row per node) — loads directly in
  /// chrome://tracing / Perfetto.  kSpanBegin/kSpanEnd become "B"/"E"
  /// duration slices; events with flow_id become flow arrows ("s"/"t"/
  /// "f" steps); everything else stays an instant event.  When the cap
  /// dropped records, a metadata instant event reports the counts.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  EventTraceOptions options_;
  std::deque<TraceEvent> events_;
  std::array<std::size_t, kNumTraceEventKinds> counts_{};
  std::array<std::size_t, kNumTraceEventKinds> dropped_{};
  std::array<bool, kNumTraceEventKinds> wants_{};
  std::size_t total_ = 0;
};

}  // namespace whitefi
