// PhaseProfiler — wall-clock cost of the expensive kernels.
//
// Instrumentation sites wrap a kernel in a ScopedPhaseTimer("sift.detect")
// and the profiler accumulates per-phase call counts, total and maximum
// wall time, plus *self* time: nested phases subtract their elapsed time
// from the enclosing phase, so "medium.deliver" containing "sift.detect"
// reports only its own work.  Timing uses the steady clock (real time, not
// simulated time — this answers "where do the CPU cycles go", the metrics
// registry answers "what did the protocol do").
//
// A null profiler pointer makes ScopedPhaseTimer construction a single
// branch with no clock read, so always-on call sites are free by default.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whitefi {

/// Accumulated cost of one named phase.
struct PhaseStats {
  std::uint64_t count = 0;   ///< Completed timer scopes.
  double total_us = 0.0;     ///< Wall time inside the scope, children included.
  double self_us = 0.0;      ///< total_us minus nested phases' wall time.
  double max_us = 0.0;       ///< Longest single scope.
};

class PhaseProfiler {
 public:
  /// Per-phase stats, keyed (and therefore sorted) by phase name.
  const std::map<std::string, PhaseStats>& phases() const { return phases_; }

  /// Currently open (nested) timer scopes.
  std::size_t depth() const { return stack_.size(); }

  void Reset() {
    phases_.clear();
    stack_.clear();
  }

  /// Aligned table sorted by total time, most expensive phase first.  When
  /// `sim_seconds` > 0 an extra column reports milliseconds of wall time
  /// spent per simulated second.
  std::string ToString(double sim_seconds = 0.0) const;

 private:
  friend class ScopedPhaseTimer;

  struct Frame {
    std::string phase;
    std::chrono::steady_clock::time_point start;
    double child_us = 0.0;  ///< Wall time of nested scopes closed so far.
  };

  void Begin(std::string phase) {
    stack_.push_back({std::move(phase), std::chrono::steady_clock::now(), 0.0});
  }

  void End() {
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - frame.start)
            .count();
    PhaseStats& stats = phases_[frame.phase];
    ++stats.count;
    stats.total_us += elapsed_us;
    stats.self_us += elapsed_us - frame.child_us;
    if (elapsed_us > stats.max_us) stats.max_us = elapsed_us;
    if (!stack_.empty()) stack_.back().child_us += elapsed_us;
  }

  std::map<std::string, PhaseStats> phases_;
  std::vector<Frame> stack_;
};

/// RAII scope: times from construction to destruction and feeds the
/// profiler.  Null profiler = no clock reads, just one branch each way.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseProfiler* profiler, std::string phase)
      : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->Begin(std::move(phase));
  }
  ~ScopedPhaseTimer() {
    if (profiler_ != nullptr) profiler_->End();
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfiler* profiler_;
};

}  // namespace whitefi
