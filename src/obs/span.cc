#include "obs/span.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace whitefi {
namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsApState(const std::string& state) {
  return state == "operating" || state == "collecting" ||
         state == "announcing" || state == "rescuing";
}

/// Per-state overlap of `window` with node's state intervals, derived
/// from its kStateEnter events (chronological).  Aggregated in
/// first-entry order so the chirping phase lists before escalation.
std::vector<RecoveryPhase> PhasesWithin(const std::vector<TraceEvent>& events,
                                        int node, std::int64_t begin_us,
                                        std::int64_t end_us) {
  std::vector<RecoveryPhase> phases;
  auto add = [&phases](const std::string& state, std::int64_t duration) {
    if (duration <= 0) return;
    for (RecoveryPhase& phase : phases) {
      if (phase.state == state) {
        phase.duration_us += duration;
        return;
      }
    }
    phases.push_back({state, duration});
  };
  // Walk the node's state entries; each holds until the next entry.
  const TraceEvent* current = nullptr;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kStateEnter || e.node != node) continue;
    if (current != nullptr) {
      const std::int64_t lo = std::max(current->at_us, begin_us);
      const std::int64_t hi = std::min(e.at_us, end_us);
      add(current->detail, hi - lo);
    }
    current = &e;
  }
  if (current != nullptr) {
    // Final state runs to the end of the window.
    const std::int64_t lo = std::max(current->at_us, begin_us);
    add(current->detail, end_us - lo);
  }
  return phases;
}

}  // namespace

std::vector<Span> BuildSpans(const std::vector<TraceEvent>& events) {
  std::vector<Span> spans;
  std::map<std::int64_t, std::size_t> open;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kSpanBegin) {
      Span span;
      span.id = e.span_id;
      span.parent = e.parent_span;
      span.flow = e.flow_id;
      span.node = e.node;
      span.name = e.detail;
      span.begin_us = e.at_us;
      open[span.id] = spans.size();
      spans.push_back(std::move(span));
    } else if (e.kind == TraceEventKind::kSpanEnd) {
      const auto it = open.find(e.span_id);
      if (it == open.end()) continue;  // End without begin (ring-evicted).
      spans[it->second].end_us = e.at_us;
      open.erase(it);
    }
  }
  return spans;
}

std::vector<std::vector<TraceEvent>> SplitRuns(
    const std::vector<TraceEvent>& events) {
  std::vector<std::vector<TraceEvent>> runs;
  for (const TraceEvent& e : events) {
    if (runs.empty() || e.at_us < runs.back().back().at_us) {
      runs.emplace_back();
    }
    runs.back().push_back(e);
  }
  return runs;
}

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events,
                           const AnalyzeOptions& options) {
  TraceAnalysis analysis;
  analysis.spans = BuildSpans(events);

  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kStateEnter && IsApState(e.detail) &&
        std::find(analysis.ap_nodes.begin(), analysis.ap_nodes.end(),
                  e.node) == analysis.ap_nodes.end()) {
      analysis.ap_nodes.push_back(e.node);
    }
  }
  for (const Span& span : analysis.spans) {
    if (StartsWith(span.name, "ap.") &&
        std::find(analysis.ap_nodes.begin(), analysis.ap_nodes.end(),
                  span.node) == analysis.ap_nodes.end()) {
      analysis.ap_nodes.push_back(span.node);
    }
  }
  std::sort(analysis.ap_nodes.begin(), analysis.ap_nodes.end());

  for (const Span& span : analysis.spans) {
    if (!StartsWith(span.name, "client.recovery")) continue;
    Recovery recovery;
    recovery.span = span;
    const auto slash = span.name.find('/');
    if (slash != std::string::npos) {
      recovery.declared_cause = span.name.substr(slash + 1);
    }
    if (span.Closed()) {
      recovery.phases =
          PhasesWithin(events, span.node, span.begin_us, span.end_us);
    }

    // Root cause.  A flow id is an exact join: the recovery continued the
    // flow the triggering incumbent event opened.
    if (span.flow != 0) {
      for (const TraceEvent& e : events) {
        if (e.kind == TraceEventKind::kIncumbentOn && e.flow_id == span.flow &&
            e.at_us <= span.begin_us) {
          recovery.cause_kind = "incumbent";
          recovery.cause_at_us = e.at_us;
          recovery.cause_detail = e.detail;
        }
      }
    }
    if (recovery.cause_kind == "unknown") {
      // Temporal join: the latest plausible trigger inside the window.
      // A lost-contact disconnect trails its cause by up to the contact
      // timeout plus one check period.
      int best_priority = -1;
      for (const TraceEvent& e : events) {
        if (e.at_us > span.begin_us) break;
        if (e.at_us + options.cause_window_us < span.begin_us) continue;
        int priority = -1;
        const char* kind = nullptr;
        if (e.kind == TraceEventKind::kFaultInjected) {
          priority = 2;
          kind = "fault";
        } else if (e.kind == TraceEventKind::kIncumbentOn) {
          priority = 1;
          kind = "incumbent";
        } else if (e.kind == TraceEventKind::kChannelSwitch &&
                   std::find(analysis.ap_nodes.begin(),
                             analysis.ap_nodes.end(),
                             e.node) != analysis.ap_nodes.end()) {
          priority = 0;
          kind = "ap_switch";
        }
        if (priority < 0) continue;
        if (e.at_us > recovery.cause_at_us ||
            (e.at_us == recovery.cause_at_us && priority > best_priority)) {
          recovery.cause_kind = kind;
          recovery.cause_at_us = e.at_us;
          recovery.cause_detail = e.detail;
          best_priority = priority;
        }
      }
    }
    analysis.recoveries.push_back(std::move(recovery));
  }
  return analysis;
}

double ExactPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const auto index = static_cast<std::size_t>(
      std::clamp(rank, 1.0, static_cast<double>(values.size())));
  return values[index - 1];
}

}  // namespace whitefi
