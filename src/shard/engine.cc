#include "shard/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace whitefi::shard {

ShardEngine::ShardEngine(const CityParams& city,
                         const ShardEngineConfig& config)
    : city_(city),
      config_(config),
      layout_(GenerateCity(city, config.medium)),
      prop_(config.medium.propagation) {
  if (config_.shards < 1) {
    throw std::invalid_argument("shard count must be >= 1");
  }
  horizon_ = config_.horizon > 0 ? config_.horizon : PhysicalLookaheadBound();
  // The most sensitive listener the medium models: energy below this floor
  // is inaudible everywhere, so it never needs to cross a seam.
  cs_floor_ = std::min(config_.medium.same_channel_cs_dbm,
                       config_.medium.energy_detect_cs_dbm);

  cell_refs_.resize(layout_.cells.size());
  const int num_tiles = layout_.partition.NumTiles();
  tiles_.reserve(static_cast<std::size_t>(num_tiles));
  for (int i = 0; i < num_tiles; ++i) {
    tiles_.push_back(std::make_unique<Tile>(i));
    BuildTile(*tiles_.back(), city_);
  }
  pool_ = std::make_unique<ThreadPool>(config_.shards);
}

ShardEngine::~ShardEngine() = default;

void ShardEngine::BuildTile(Tile& tile, const CityParams& city) {
  tile.metrics = std::make_unique<MetricsRegistry>();
  if (config_.trace) tile.trace = std::make_unique<EventTrace>();

  // Cells owned by this tile, in global cell order (determinism: node ids
  // within the tile depend only on this order and first_node_id).
  std::vector<int> cells_here;
  for (std::size_t c = 0; c < layout_.cells.size(); ++c) {
    if (layout_.cells[c].tile == tile.index) {
      cells_here.push_back(static_cast<int>(c));
    }
  }

  if (config_.audit) {
    // Auditors must exist before any device: construction fires
    // OnMacTiming/OnNodeTuned hooks every auditor needs to see.
    tile.fanout = std::make_unique<AuditFanout>();
    for (std::size_t k = 0; k < cells_here.size(); ++k) {
      tile.fanout->Add(config_.audit_config);
    }
  }

  WorldConfig wc;
  wc.seed = DeriveSeed(city.seed, "city.tile." + std::to_string(tile.index));
  wc.medium = config_.medium;
  // Disjoint id ranges keep node ids globally unique across tiles, so
  // ghost energy books under the sender's real id everywhere.
  wc.first_node_id = 1 + tile.index * 100000;
  wc.obs.metrics = tile.metrics.get();
  wc.obs.trace = tile.trace.get();
  wc.obs.auditor = tile.fanout.get();
  tile.world = std::make_unique<World>(wc);
  if (tile.fanout != nullptr) tile.fanout->AttachAll(*tile.world);

  for (std::size_t k = 0; k < cells_here.size(); ++k) {
    const int c = cells_here[k];
    const CellPlan& plan = layout_.cells[static_cast<std::size_t>(c)];
    CellRuntime rt;
    rt.cell = c;

    DeviceConfig ap_cfg;
    ap_cfg.position = plan.ap;
    ap_cfg.is_ap = true;
    ap_cfg.ssid = plan.ssid;
    ap_cfg.initial_channel = plan.main;
    ap_cfg.tx_power = city.tx_power_dbm;
    rt.ap = &tile.world->Create<ApNode>(ap_cfg, ApParams{}, plan.main,
                                        plan.backup);

    const ClientParams client_params;
    for (const Position& p : plan.clients) {
      DeviceConfig cc;
      cc.position = p;
      cc.ssid = plan.ssid;
      cc.initial_channel = plan.main;
      cc.tx_power = city.tx_power_dbm;
      rt.clients.push_back(&tile.world->Create<ClientNode>(
          cc, client_params, plan.main, plan.backup, rt.ap->NodeId()));
    }

    if (tile.fanout != nullptr) {
      rt.auditor = tile.fanout->auditors()[k].get();
      rt.auditor->RegisterAp(rt.ap->NodeId());
      for (const ClientNode* client : rt.clients) {
        rt.auditor->RegisterClient(client->NodeId(), client_params);
      }
    }

    cell_refs_[static_cast<std::size_t>(c)] =
        CellRef{tile.index, static_cast<int>(tile.cells.size())};
    tile.cells.push_back(std::move(rt));
  }

  tile.world->StartAll();

  for (CellRuntime& rt : tile.cells) {
    for (ClientNode* client : rt.clients) {
      if (city.traffic == "cbr") {
        auto src = std::make_unique<CbrSource>(
            *client, rt.ap->NodeId(), city.payload_bytes, city.cbr_interval);
        src->Start();
        rt.cbr.push_back(std::move(src));
      } else {
        auto src = std::make_unique<SaturatedSource>(*client, rt.ap->NodeId(),
                                                     city.payload_bytes);
        src->Start();
        rt.saturated.push_back(std::move(src));
      }
    }
  }

  for (std::size_t m = 0; m < layout_.mics.size(); ++m) {
    // A mic belongs to one tile and is audible to every node there; the
    // tile edge (>= the cutoff) keeps it irrelevant beyond the seam.
    if (layout_.mic_tile[m] == tile.index) {
      tile.world->AddMic(layout_.mics[m]);
    }
  }

  // The boundary's observation seam: every completed LOCAL transmission
  // that still reaches a neighbor tile above the carrier-sense floor is
  // staged for the barrier.  The tap runs on this tile's round thread and
  // touches only this tile's outbox (single writer).
  const int t = tile.index;
  tile.world->medium().AddEnergyTap(
      [this, t](const Medium::EnergyTapInfo& info) { OnLocalEnergy(t, info); });
}

void ShardEngine::OnLocalEnergy(int tile, const Medium::EnergyTapInfo& info) {
  const Position pos = info.tx.Location();
  for (const int n : layout_.partition.Neighbors(tile)) {
    if (!EnergyCrossesBoundary(prop_, info.power, pos,
                               layout_.partition.Rect(n), cs_floor_)) {
      continue;
    }
    CrossShardEvent event;
    event.kind = CrossShardEvent::Kind::kRemoteEnergy;
    event.time = info.end;
    event.dst_tile = n;
    event.node = info.tx.NodeId();
    event.is_ap = info.tx.IsAp();
    event.position = pos;
    event.channel = info.channel;
    event.frame = info.frame;
    event.tx_power = info.power;
    event.duration = info.end - info.start;
    tiles_[static_cast<std::size_t>(tile)]->outbox.Push(std::move(event));
  }
}

void ShardEngine::Run(double seconds) {
  const SimTime end =
      now_ + static_cast<SimTime>(std::llround(seconds * kTicksPerSec));
  while (now_ < end) {
    const SimTime target = std::min(now_ + horizon_, end);
    pool_->Run(tiles_.size(), [&](std::size_t i) {
      tiles_[i]->world->sim().Run(target);
    });
    now_ = target;
    ++rounds_;
    ExchangeAndApply(target);
  }
}

void ShardEngine::ExchangeAndApply(SimTime target) {
  // Scripted roams that fell due this round enter through their source
  // tile's outbox, sharing its sequence stream with the energy events —
  // the canonical key (time, src_tile, node, seq) is then unique.
  while (roam_cursor_ < layout_.roams.size() &&
         layout_.roams[roam_cursor_].at <= target) {
    const RoamPlan& plan = layout_.roams[roam_cursor_];
    const int src_tile =
        layout_.cells[static_cast<std::size_t>(plan.from_cell)].tile;
    CrossShardEvent event;
    event.kind = CrossShardEvent::Kind::kRoam;
    event.time = plan.at;
    event.dst_tile =
        layout_.cells[static_cast<std::size_t>(plan.to_cell)].tile;
    event.node =
        RuntimeOf(plan.from_cell)
            .clients[static_cast<std::size_t>(plan.client_slot)]
            ->NodeId();
    event.position = plan.arrive;
    event.from_cell = plan.from_cell;
    event.to_cell = plan.to_cell;
    event.client_slot = plan.client_slot;
    tiles_[static_cast<std::size_t>(src_tile)]->outbox.Push(std::move(event));
    ++roam_cursor_;
  }

  std::vector<CrossShardEvent> events;
  for (auto& tile : tiles_) {
    std::vector<CrossShardEvent> taken = tile->outbox.Take();
    events.insert(events.end(), std::make_move_iterator(taken.begin()),
                  std::make_move_iterator(taken.end()));
  }
  CanonicalSort(events);
  messages_shipped_ += events.size();

  for (const CrossShardEvent& event : events) {
    if (event.kind == CrossShardEvent::Kind::kRemoteEnergy) {
      ApplyRemoteEnergy(event);
    } else {
      ApplyRoam(event);
    }
  }
}

void ShardEngine::ApplyRemoteEnergy(const CrossShardEvent& event) {
  World& world = *tiles_[static_cast<std::size_t>(event.dst_tile)]->world;
  // Applied at the receiving tile's horizon tick (sim time == target);
  // the ghost keeps its full original duration.
  world.medium().InjectForeignEnergy(event.node, event.is_ap, event.position,
                                     event.channel, event.frame,
                                     event.tx_power, event.duration);
  ++ghosts_injected_;
}

void ShardEngine::ApplyRoam(const CrossShardEvent& event) {
  CellRuntime& from = RuntimeOf(event.from_cell);
  const auto slot = static_cast<std::size_t>(event.client_slot);
  if (slot < from.cbr.size()) from.cbr[slot]->SetActive(false);

  CellRuntime& to = RuntimeOf(event.to_cell);
  Tile& tile = *tiles_[static_cast<std::size_t>(event.dst_tile)];
  const CellPlan& plan = layout_.cells[static_cast<std::size_t>(event.to_cell)];

  DeviceConfig cfg;
  cfg.position = event.position;
  cfg.ssid = plan.ssid;
  // The session lands on the destination AP's CURRENT channels — runtime
  // state, but deterministic at a barrier tick for every shard count.
  cfg.initial_channel = to.ap->main_channel();
  cfg.tx_power = city_.tx_power_dbm;
  const ClientParams client_params;
  ClientNode& client = tile.world->Create<ClientNode>(
      cfg, client_params, to.ap->main_channel(), to.ap->backup_channel(),
      to.ap->NodeId());
  client.Start();
  auto src = std::make_unique<CbrSource>(client, to.ap->NodeId(),
                                         city_.payload_bytes,
                                         city_.cbr_interval);
  src->Start();
  to.clients.push_back(&client);
  to.cbr.push_back(std::move(src));
  if (to.auditor != nullptr) {
    to.auditor->RegisterClient(client.NodeId(), client_params);
  }
  ++roams_applied_;
}

ShardEngine::CellRuntime& ShardEngine::RuntimeOf(int cell) {
  const CellRef& ref = cell_refs_[static_cast<std::size_t>(cell)];
  return tiles_[static_cast<std::size_t>(ref.tile)]
      ->cells[static_cast<std::size_t>(ref.index)];
}

const ShardEngine::CellRuntime& ShardEngine::RuntimeOf(int cell) const {
  const CellRef& ref = cell_refs_[static_cast<std::size_t>(cell)];
  return tiles_[static_cast<std::size_t>(ref.tile)]
      ->cells[static_cast<std::size_t>(ref.index)];
}

void ShardEngine::ResetAppBytes() {
  for (auto& tile : tiles_) tile->world->ResetAppBytes();
}

std::map<std::string, std::uint64_t> ShardEngine::MergedCounters() const {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& tile : tiles_) {
    const MetricsSnapshot snapshot = tile->metrics->Snapshot();
    for (const auto& entry : snapshot.counters) {
      merged[entry.name] += entry.value;
    }
  }
  return merged;
}

std::uint64_t ShardEngine::EventsProcessed() const {
  std::uint64_t total = 0;
  for (const auto& tile : tiles_) total += tile->world->sim().NumProcessed();
  return total;
}

std::uint64_t ShardEngine::Transmissions() const {
  std::uint64_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile->world->medium().NumTransmissions();
  }
  return total;
}

std::uint64_t ShardEngine::CellAppBytes(int cell) const {
  const CellRef& ref = cell_refs_[static_cast<std::size_t>(cell)];
  const CellPlan& plan = layout_.cells[static_cast<std::size_t>(cell)];
  return tiles_[static_cast<std::size_t>(ref.tile)]->world->AppBytesInSsid(
      plan.ssid);
}

std::uint64_t ShardEngine::AppBytesTotal() const {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < layout_.cells.size(); ++c) {
    total += CellAppBytes(static_cast<int>(c));
  }
  return total;
}

std::uint64_t ShardEngine::TraceTotal() const {
  std::uint64_t total = 0;
  for (const auto& tile : tiles_) {
    if (tile->trace != nullptr) total += tile->trace->TotalSeen();
  }
  return total;
}

bool ShardEngine::audit_ok() const {
  for (const auto& tile : tiles_) {
    if (tile->fanout != nullptr && !tile->fanout->ok()) return false;
  }
  return true;
}

std::uint64_t ShardEngine::audit_violations() const {
  std::uint64_t total = 0;
  for (const auto& tile : tiles_) {
    if (tile->fanout != nullptr) total += tile->fanout->violation_count();
  }
  return total;
}

std::string ShardEngine::SummaryText() const {
  // Integers only, and never the shard count or wall time: this text is
  // the byte-identity target (`--shards N` must reproduce it exactly).
  std::ostringstream os;
  std::uint64_t clients = 0;
  for (const auto& tile : tiles_) {
    for (const CellRuntime& rt : tile->cells) clients += rt.clients.size();
  }
  os << "whitefi city-scale summary\n";
  os << "tiles=" << NumTiles() << " cells=" << layout_.cells.size()
     << " clients=" << clients << " horizon_us=" << horizon_
     << " rounds=" << rounds_ << "\n";
  os << "events=" << EventsProcessed() << " transmissions=" << Transmissions()
     << " messages=" << messages_shipped_ << " ghosts=" << ghosts_injected_
     << " roams=" << roams_applied_ << "\n";
  os << "app_bytes=" << AppBytesTotal() << " trace_events=" << TraceTotal()
     << "\n";
  if (!config_.audit) {
    os << "audit=off\n";
  } else if (audit_ok()) {
    os << "audit=ok\n";
  } else {
    os << "audit=violations count=" << audit_violations() << "\n";
  }
  for (std::size_t c = 0; c < layout_.cells.size(); ++c) {
    const CellRuntime& rt = RuntimeOf(static_cast<int>(c));
    os << "cell " << c << " ssid "
       << layout_.cells[c].ssid << " bytes " << CellAppBytes(static_cast<int>(c))
       << " switches " << rt.ap->num_switches() << " clients "
       << rt.clients.size() << "\n";
  }
  for (const auto& [name, value] : MergedCounters()) {
    os << "counter " << name << " " << value << "\n";
  }
  return os.str();
}

}  // namespace whitefi::shard
