#include "shard/boundary.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace whitefi::shard {

bool CanonicalBefore(const CrossShardEvent& a, const CrossShardEvent& b) {
  return std::tie(a.time, a.src_tile, a.node, a.seq) <
         std::tie(b.time, b.src_tile, b.node, b.seq);
}

void CanonicalSort(std::vector<CrossShardEvent>& events) {
  // Stable: events are collected in deterministic tile order, so a key
  // tie (possible only across kinds) falls back to collection order.
  std::stable_sort(events.begin(), events.end(), CanonicalBefore);
}

bool EnergyCrossesBoundary(const PropagationModel& prop, Dbm tx_power,
                           const Position& from, const TileRect& dst,
                           Dbm floor_dbm) {
  const double meters = DistanceToRect(from, dst);
  return prop.ReceivedPower(tx_power, meters) >= floor_dbm;
}

void ShardOutbox::Push(CrossShardEvent event) {
  event.src_tile = src_tile_;
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<CrossShardEvent> ShardOutbox::Take() {
  std::vector<CrossShardEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace whitefi::shard
