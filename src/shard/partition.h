// Spatial partition for the city-scale sharded simulation.
//
// The deployment plane is cut into a fixed rectangular grid of tiles.
// Each tile owns its own Simulator + Medium + nodes and advances on its
// own thread between conservative barriers (src/shard/engine.h).  The
// grid is a function of the scenario geometry ONLY — never of the shard
// (thread) count — which is what makes `--shards N` byte-identical to
// `--shards 1`: shards merely map tiles onto threads.
//
// The conservative-lookahead argument rests on the attenuation model:
// log-distance path loss is monotone in distance, so a transmission at
// `tx_power` is below the carrier-sense floor everywhere beyond the
// interference cutoff distance.  With a tile edge of at least that
// cutoff, a transmitter can only be heard inside its own tile and the
// eight surrounding tiles, so cross-tile influence is confined to the
// neighbor seam the boundary ships messages across.
#pragma once

#include <vector>

#include "sim/medium.h"
#include "sim/propagation.h"
#include "util/units.h"

namespace whitefi::shard {

/// Distance beyond which a transmission at `tx_power_dbm` is received
/// below `floor_dbm` under `prop` (inverse of the log-distance path-loss
/// model; never less than the near-field clamp).
double InterferenceCutoffMeters(Dbm tx_power_dbm, Dbm floor_dbm,
                                const PropagationParams& prop);

/// The widest cutoff the medium can produce for transmitters up to
/// `max_tx_power_dbm`: evaluated against the most sensitive carrier-sense
/// floor (same-channel preamble detection).  The minimum legal tile edge.
double MinTileEdgeMeters(const MediumParams& medium, Dbm max_tx_power_dbm);

/// Conservative lookahead: how much simulated time a tile may advance
/// past the last barrier before it must observe its neighbors' energy.
/// Derived from the air interface, not the shard count: the air time of
/// a maximum-size frame at the narrowest (slowest) channel width, i.e.
/// the longest single transmission the medium can carry.  Energy shipped
/// at barriers is then stale by at most one frame's air time.
SimTime PhysicalLookaheadBound();

/// One tile's rectangle, [x0, x1) x [y0, y1) in meters.
struct TileRect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;
};

/// Distance from a point to the nearest point of `rect` (0 inside).
double DistanceToRect(const Position& p, const TileRect& rect);

/// The fixed tile grid over a width_m x height_m city.
///
/// Tiles are row-major: tile = row * cols + col.  The requested edge
/// `tile_m` is a floor — the grid uses the largest column/row count whose
/// resulting edges are still >= tile_m, so every tile edge satisfies the
/// cutoff precondition.
class Partition {
 public:
  /// Throws std::invalid_argument on non-positive dimensions or when
  /// `tile_m` is not positive.
  Partition(double width_m, double height_m, double tile_m);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int NumTiles() const { return cols_ * rows_; }
  double width_m() const { return width_m_; }
  double height_m() const { return height_m_; }
  /// Actual tile edges (>= the constructor's tile_m).
  double tile_width_m() const { return width_m_ / cols_; }
  double tile_height_m() const { return height_m_ / rows_; }

  /// Tile owning position `p`; positions outside the city clamp to the
  /// nearest edge tile.
  int TileOf(const Position& p) const;

  /// The rectangle of tile `tile`.
  TileRect Rect(int tile) const;

  /// The 8-neighborhood of `tile` (existing tiles only), ascending ids.
  std::vector<int> Neighbors(int tile) const;

 private:
  double width_m_;
  double height_m_;
  int cols_;
  int rows_;
};

}  // namespace whitefi::shard
