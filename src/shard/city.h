// City-scale scenario generator.
//
// Produces a deterministic city layout — AP cells on a grid or Poisson
// scatter, clients clustered around their AP, scripted mic activations
// and client roams — as pure data, before any World exists.  Everything
// derives from the scenario seed through labeled DeriveSeed streams
// ("city.placement", "city.clients", ...), so the layout is a function of
// (params, seed) alone and in particular independent of the shard count.
//
// Cells are tile-local by construction: an AP and its clients all live
// inside the AP's tile (ghost frames crossing a seam are energy only —
// a client could never decode an AP in another tile).  Roaming moves a
// client's *session* between cells at a barrier tick instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/medium.h"
#include "sim/propagation.h"
#include "spectrum/incumbents.h"
#include "util/units.h"

#include "shard/partition.h"

namespace whitefi::shard {

/// AP placement patterns.
enum class ApPlacement { kGrid, kPoisson };

/// City generator parameters.
struct CityParams {
  std::uint64_t seed = 1;
  double width_m = 20000.0;       ///< City extent (meters).
  double height_m = 20000.0;
  /// Tile edge; 0 derives the minimum legal edge (the interference
  /// cutoff) from the medium.  An explicit value below the cutoff is
  /// rejected — it would break the 8-neighborhood confinement argument.
  double tile_m = 0.0;
  ApPlacement placement = ApPlacement::kGrid;
  int num_aps = 200;
  int clients_per_ap = 2;
  double cell_radius_m = 150.0;   ///< Client scatter radius around the AP.
  Dbm tx_power_dbm = 16.0;
  /// Traffic shape: "cbr" (per-client uplink CBR) or "saturated"
  /// (backlogged uplink).  Roams require "cbr" (sessions pause/resume).
  std::string traffic = "cbr";
  int payload_bytes = 1000;
  SimTime cbr_interval = 20 * kTicksPerMs;
  /// Scripted mic activations: mic k lands on cell (k mod cells)'s main
  /// channel at mic_start_s + k * mic_period_s for mic_duration_s.
  int num_mics = 0;
  double mic_start_s = 2.0;
  double mic_period_s = 10.0;
  double mic_duration_s = 3.0;
  /// Scripted roams: roam k moves client (k mod clients_per_ap) of cell
  /// (k mod cells) to the nearest cell in a different tile, at
  /// roam_start_s + k * roam_period_s (applied at the following barrier).
  int num_roams = 0;
  double roam_start_s = 1.0;
  double roam_period_s = 2.0;
};

/// Throws std::invalid_argument on out-of-range parameters (non-positive
/// extents/counts, unknown traffic shape, roams without cbr, ...).
void ValidateCityParams(const CityParams& params);

/// One AP cell: the AP, its clients, its network identity and channels.
struct CellPlan {
  Position ap;
  std::vector<Position> clients;
  int ssid = 0;
  int tile = 0;
  Channel main{0, ChannelWidth::kW5};
  Channel backup{0, ChannelWidth::kW5};
};

/// One scripted roam, precomputed (shard-count independent).
struct RoamPlan {
  SimTime at = 0;        ///< Scenario time; applied at the next barrier.
  int from_cell = 0;
  int to_cell = 0;
  int client_slot = 0;   ///< Which of from_cell's clients roams.
  Position arrive;       ///< Where the session lands in to_cell's tile.
};

/// The generated city.
struct CityLayout {
  Partition partition;
  std::vector<CellPlan> cells;
  std::vector<MicActivation> mics;
  std::vector<int> mic_tile;     ///< Owning tile per mic (parallel array).
  std::vector<RoamPlan> roams;
};

/// Generates the layout.  `medium` supplies the propagation model and
/// carrier-sense floors the tile-edge derivation needs.
CityLayout GenerateCity(const CityParams& params, const MediumParams& medium);

}  // namespace whitefi::shard
