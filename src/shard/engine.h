// ShardEngine — the city-scale sharded federation.
//
// One World (Simulator + Medium + nodes) per spatial tile, advanced in
// rounds of one conservative horizon each:
//
//   round:   every tile runs sim.Run(target) — in parallel, one tile per
//            pool slot; a tile touches only its own world, its own
//            metrics registry and its own outbox, so rounds share no
//            mutable state.
//   barrier: the engine (serially) drains every outbox in tile order,
//            appends the scripted roams that fell due, sorts the union
//            into the canonical (time, src_tile, node, seq) order and
//            applies each event at the receiving tile's horizon tick —
//            ghost energy via Medium::InjectForeignEnergy, roams as
//            session handoffs.
//
// Determinism: the partition, the horizon, the canonical order and every
// per-tile seed derive from the scenario alone.  `shards` only sets the
// thread-pool width mapping tiles onto threads; `--shards N` therefore
// produces byte-identical science to `--shards 1` (shard_test and the CI
// byte-identity leg pin this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/ap.h"
#include "core/client.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "util/parallel.h"

#include "shard/audit_fanout.h"
#include "shard/boundary.h"
#include "shard/city.h"
#include "shard/partition.h"

namespace whitefi::shard {

/// Federation configuration.
struct ShardEngineConfig {
  /// Worker threads mapping tiles to cores.  Purely an execution knob:
  /// results are byte-identical for every value >= 1.
  int shards = 1;
  MediumParams medium;
  /// Conservative horizon per round; 0 derives PhysicalLookaheadBound().
  SimTime horizon = 0;
  /// Attach one InvariantAuditor per AP cell (incumbent safety, chirp
  /// liveness, convergence, book conservation) through an AuditFanout.
  bool audit = false;
  AuditConfig audit_config;
  /// Attach a per-tile EventTrace; the summary reports exact totals.
  bool trace = false;
};

/// The sharded city simulation.
class ShardEngine {
 public:
  /// Generates the city and builds every tile world.  Throws
  /// std::invalid_argument on bad parameters (shards < 1, city
  /// validation failures, tile edge below the cutoff).
  ShardEngine(const CityParams& city, const ShardEngineConfig& config);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Advances the whole federation by `seconds` of simulated time.
  void Run(double seconds);

  /// Clears every tile's application-delivery counters (warmup cut).
  void ResetAppBytes();

  // -- Results -------------------------------------------------------------

  /// Deterministic run summary: integers only, identical for every shard
  /// count — the CI byte-identity diff target.  Never includes wall
  /// time or the shard count.
  std::string SummaryText() const;

  /// Counters summed across tiles, keyed by metric name.
  std::map<std::string, std::uint64_t> MergedCounters() const;

  /// Simulation events processed, summed across tiles.
  std::uint64_t EventsProcessed() const;

  /// Transmissions started, summed across tiles (ghosts included).
  std::uint64_t Transmissions() const;

  /// Application payload bytes delivered, summed across every cell.
  std::uint64_t AppBytesTotal() const;

  /// Payload bytes delivered within one cell's SSID.
  std::uint64_t CellAppBytes(int cell) const;

  /// Exact trace records offered across tiles (0 when tracing is off).
  std::uint64_t TraceTotal() const;

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_shipped() const { return messages_shipped_; }
  std::uint64_t ghosts_injected() const { return ghosts_injected_; }
  std::uint64_t roams_applied() const { return roams_applied_; }

  bool audit_ok() const;
  std::uint64_t audit_violations() const;

  SimTime Now() const { return now_; }
  SimTime horizon() const { return horizon_; }
  int NumTiles() const { return layout_.partition.NumTiles(); }
  const CityLayout& layout() const { return layout_; }

  /// The tile's world (tests inspect books/metrics through it).
  World& tile_world(int tile) { return *tiles_[static_cast<std::size_t>(tile)]->world; }

 private:
  /// One cell's live protocol objects inside its tile.
  struct CellRuntime {
    int cell = -1;
    ApNode* ap = nullptr;
    std::vector<ClientNode*> clients;
    std::vector<std::unique_ptr<CbrSource>> cbr;
    std::vector<std::unique_ptr<SaturatedSource>> saturated;
    InvariantAuditor* auditor = nullptr;
  };

  struct Tile {
    int index = 0;
    std::unique_ptr<MetricsRegistry> metrics;
    std::unique_ptr<EventTrace> trace;
    std::unique_ptr<AuditFanout> fanout;
    std::unique_ptr<World> world;
    ShardOutbox outbox;
    std::vector<CellRuntime> cells;

    explicit Tile(int i) : index(i), outbox(i) {}
  };

  /// Where cell `c` lives: (tile, index within the tile's cell list).
  struct CellRef {
    int tile = -1;
    int index = -1;
  };

  void BuildTile(Tile& tile, const CityParams& city);
  void OnLocalEnergy(int tile, const Medium::EnergyTapInfo& info);
  void ExchangeAndApply(SimTime target);
  void ApplyRemoteEnergy(const CrossShardEvent& event);
  void ApplyRoam(const CrossShardEvent& event);
  CellRuntime& RuntimeOf(int cell);
  const CellRuntime& RuntimeOf(int cell) const;

  CityParams city_;
  ShardEngineConfig config_;
  CityLayout layout_;
  SimTime horizon_ = 0;
  Dbm cs_floor_ = 0.0;
  PropagationModel prop_;

  std::vector<std::unique_ptr<Tile>> tiles_;
  std::vector<CellRef> cell_refs_;
  std::unique_ptr<ThreadPool> pool_;

  SimTime now_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_shipped_ = 0;
  std::uint64_t ghosts_injected_ = 0;
  std::uint64_t roams_applied_ = 0;
  std::size_t roam_cursor_ = 0;
};

}  // namespace whitefi::shard
