#include "shard/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/timing.h"

namespace whitefi::shard {

double InterferenceCutoffMeters(Dbm tx_power_dbm, Dbm floor_dbm,
                                const PropagationParams& prop) {
  // Invert tx - (ref + 10 n log10 d) = floor for d.
  const double margin_db = tx_power_dbm - floor_dbm - prop.reference_loss_db;
  const double d = std::pow(10.0, margin_db / (10.0 * prop.exponent));
  return std::max(d, prop.min_distance);
}

double MinTileEdgeMeters(const MediumParams& medium, Dbm max_tx_power_dbm) {
  // Same-channel preamble detection is the most sensitive listener the
  // medium models; energy below it is below every decode/sense threshold.
  const Dbm floor = std::min(medium.same_channel_cs_dbm,
                             medium.energy_detect_cs_dbm);
  return InterferenceCutoffMeters(max_tx_power_dbm, floor,
                                  medium.propagation);
}

SimTime PhysicalLookaheadBound() {
  // The longest transmission the medium can carry: a maximum-size data
  // frame at the narrowest width.  Ghost energy shipped at barriers is
  // then stale by at most one frame air time.
  const PhyTiming timing = PhyTiming::ForWidth(ChannelWidth::kW5);
  const Us longest = timing.FrameDuration(1500);
  return static_cast<SimTime>(std::ceil(longest));
}

double DistanceToRect(const Position& p, const TileRect& rect) {
  const double dx = std::max({rect.x0 - p.x, 0.0, p.x - rect.x1});
  const double dy = std::max({rect.y0 - p.y, 0.0, p.y - rect.y1});
  return std::sqrt(dx * dx + dy * dy);
}

Partition::Partition(double width_m, double height_m, double tile_m)
    : width_m_(width_m), height_m_(height_m) {
  if (!(width_m > 0.0) || !(height_m > 0.0)) {
    throw std::invalid_argument("partition dimensions must be positive");
  }
  if (!(tile_m > 0.0)) {
    throw std::invalid_argument("partition tile edge must be positive");
  }
  // Largest grid whose edges stay >= tile_m (the interference cutoff).
  cols_ = std::max(1, static_cast<int>(std::floor(width_m / tile_m)));
  rows_ = std::max(1, static_cast<int>(std::floor(height_m / tile_m)));
}

int Partition::TileOf(const Position& p) const {
  const double tw = tile_width_m();
  const double th = tile_height_m();
  int col = static_cast<int>(std::floor(p.x / tw));
  int row = static_cast<int>(std::floor(p.y / th));
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return row * cols_ + col;
}

TileRect Partition::Rect(int tile) const {
  const int row = tile / cols_;
  const int col = tile % cols_;
  const double tw = tile_width_m();
  const double th = tile_height_m();
  return TileRect{col * tw, row * th, (col + 1) * tw, (row + 1) * th};
}

std::vector<int> Partition::Neighbors(int tile) const {
  const int row = tile / cols_;
  const int col = tile % cols_;
  std::vector<int> out;
  out.reserve(8);
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const int r = row + dr;
      const int c = col + dc;
      if (r < 0 || r >= rows_ || c < 0 || c >= cols_) continue;
      out.push_back(r * cols_ + c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace whitefi::shard
