// The deterministic cross-shard event boundary.
//
// During a round each tile's world runs alone on its thread; everything
// that must cross a tile seam is recorded in the owning tile's outbox as
// a timestamped CrossShardEvent.  At the barrier the engine drains every
// outbox serially, sorts the union into the canonical order
// (time, src_tile, node, seq) and applies each event at the receiving
// tile's next horizon tick.  Because the partition, the horizon and the
// canonical order are all functions of the scenario — never of the shard
// count — any `--shards N` run applies the identical event sequence and
// the federation is byte-identical to the serial run.
//
// Two event kinds cross a seam:
//  * RemoteEnergy — a completed local transmission whose received power
//    at the nearest point of a neighbor tile still reaches the
//    carrier-sense floor (energy exactly AT the floor crosses; an epsilon
//    below does not).  Re-emitted as ghost energy via
//    Medium::InjectForeignEnergy: sensed, booked and frame-tapped at the
//    destination (so scanners measure it and chirp watches hear roamers'
//    chirps), never delivered, never re-exported.
//  * Roam — a scripted client session handoff between cells; applied at
//    the barrier tick by deactivating the client's traffic in the origin
//    cell and bringing up a new client in the destination cell.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/frame.h"
#include "sim/medium.h"
#include "sim/propagation.h"
#include "spectrum/channel.h"
#include "util/units.h"

#include "shard/partition.h"

namespace whitefi::shard {

/// One event crossing a tile seam.
struct CrossShardEvent {
  enum class Kind { kRemoteEnergy, kRoam };

  Kind kind = Kind::kRemoteEnergy;
  SimTime time = 0;        ///< Origin-tile simulated time of the event.
  int src_tile = 0;
  int dst_tile = 0;
  int node = 0;            ///< Transmitter id, or the roaming client id.
  std::uint64_t seq = 0;   ///< Per-outbox emission sequence (tie-break).

  // -- RemoteEnergy payload ------------------------------------------------
  bool is_ap = false;
  Position position;       ///< Transmitter location (for path loss).
  Channel channel{0, ChannelWidth::kW5};
  Frame frame;
  Dbm tx_power = 0.0;
  SimTime duration = 0;    ///< Full original air time.

  // -- Roam payload --------------------------------------------------------
  int from_cell = -1;
  int to_cell = -1;
  int client_slot = -1;    ///< Index of the client within from_cell.
};

/// The canonical application order: (time, src_tile, node, seq).  Total
/// over events from one run because `seq` is unique per (src_tile).
bool CanonicalBefore(const CrossShardEvent& a, const CrossShardEvent& b);

/// Sorts `events` into the canonical order.
void CanonicalSort(std::vector<CrossShardEvent>& events);

/// True iff energy from a transmitter at `from` with `tx_power` reaches
/// the carrier-sense floor anywhere inside `dst` — evaluated at the
/// nearest point of the rectangle, since path loss is monotone in
/// distance.  Received power exactly AT the floor ships (>=): the medium
/// senses carrier at the threshold, so the boundary must too.
bool EnergyCrossesBoundary(const PropagationModel& prop, Dbm tx_power,
                           const Position& from, const TileRect& dst,
                           Dbm floor_dbm);

/// Single-writer per-tile event staging.  The owning tile's thread pushes
/// during its round; the engine drains at the barrier (serially).
class ShardOutbox {
 public:
  explicit ShardOutbox(int src_tile) : src_tile_(src_tile) {}

  /// Stamps src_tile and the next sequence number, then stores the event.
  void Push(CrossShardEvent event);

  /// Moves out everything staged since the last Take.
  std::vector<CrossShardEvent> Take();

  int src_tile() const { return src_tile_; }

 private:
  int src_tile_;
  std::uint64_t next_seq_ = 0;
  std::vector<CrossShardEvent> events_;
};

}  // namespace whitefi::shard
