#include "shard/city.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace whitefi::shard {

namespace {

/// Clamps `p` into `rect` with a 1 m inset so TileOf stays unambiguous.
Position ClampIntoRect(Position p, const TileRect& rect) {
  p.x = std::clamp(p.x, rect.x0 + 1.0, rect.x1 - 1.0);
  p.y = std::clamp(p.y, rect.y0 + 1.0, rect.y1 - 1.0);
  return p;
}

}  // namespace

void ValidateCityParams(const CityParams& params) {
  if (!(params.width_m > 0.0) || !(params.height_m > 0.0)) {
    throw std::invalid_argument("city extents must be positive");
  }
  if (params.tile_m < 0.0) {
    throw std::invalid_argument("city tile edge must be non-negative");
  }
  if (params.num_aps <= 0) {
    throw std::invalid_argument("city needs at least one AP");
  }
  if (params.clients_per_ap < 0) {
    throw std::invalid_argument("city clients_per_ap must be non-negative");
  }
  if (!(params.cell_radius_m > 0.0)) {
    throw std::invalid_argument("city cell radius must be positive");
  }
  if (params.traffic != "cbr" && params.traffic != "saturated") {
    throw std::invalid_argument("city traffic must be 'cbr' or 'saturated'");
  }
  if (params.payload_bytes <= 0) {
    throw std::invalid_argument("city payload bytes must be positive");
  }
  if (params.cbr_interval <= 0) {
    throw std::invalid_argument("city cbr interval must be positive");
  }
  if (params.num_mics < 0 || params.num_roams < 0) {
    throw std::invalid_argument("city mic/roam counts must be non-negative");
  }
  if (params.num_roams > 0 && params.traffic != "cbr") {
    throw std::invalid_argument(
        "city roams require cbr traffic (sessions pause and resume)");
  }
  if (params.num_roams > 0 && params.clients_per_ap == 0) {
    throw std::invalid_argument("city roams need at least one client per AP");
  }
  if (params.num_mics > 0 &&
      (!(params.mic_period_s > 0.0) || !(params.mic_duration_s > 0.0))) {
    throw std::invalid_argument("city mic period/duration must be positive");
  }
  if (params.num_roams > 0 && !(params.roam_period_s > 0.0)) {
    throw std::invalid_argument("city roam period must be positive");
  }
}

CityLayout GenerateCity(const CityParams& params, const MediumParams& medium) {
  ValidateCityParams(params);

  const double min_edge = MinTileEdgeMeters(medium, params.tx_power_dbm);
  double tile_m = params.tile_m;
  if (tile_m == 0.0) {
    tile_m = min_edge;
  } else if (tile_m < min_edge) {
    throw std::invalid_argument(
        "city tile edge below the interference cutoff (" +
        std::to_string(min_edge) + " m): cross-tile influence would leak "
        "past the 8-neighborhood");
  }
  if (tile_m > params.width_m || tile_m > params.height_m) {
    // A city smaller than one cutoff collapses to a single tile.
    tile_m = std::min(params.width_m, params.height_m);
  }

  CityLayout layout{Partition(params.width_m, params.height_m, tile_m)};

  // -- AP placement --------------------------------------------------------
  Rng place_rng(DeriveSeed(params.seed, "city.placement"));
  const int n = params.num_aps;
  layout.cells.reserve(static_cast<std::size_t>(n));
  const int grid = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  for (int i = 0; i < n; ++i) {
    CellPlan cell;
    if (params.placement == ApPlacement::kGrid) {
      const int row = i / grid;
      const int col = i % grid;
      const double sx = params.width_m / grid;
      const double sy = params.height_m / grid;
      cell.ap.x = (col + 0.5) * sx + place_rng.Uniform(-0.15 * sx, 0.15 * sx);
      cell.ap.y = (row + 0.5) * sy + place_rng.Uniform(-0.15 * sy, 0.15 * sy);
    } else {
      cell.ap.x = place_rng.Uniform(0.0, params.width_m);
      cell.ap.y = place_rng.Uniform(0.0, params.height_m);
    }
    cell.tile = layout.partition.TileOf(cell.ap);
    cell.ap = ClampIntoRect(cell.ap, layout.partition.Rect(cell.tile));
    cell.ssid = i + 1;
    // Deterministic channel plan: stride the band so neighboring cells
    // land on different narrow channels (spatial reuse, as deployed).
    const UhfIndex main = (7 * i) % kNumUhfChannels;
    UhfIndex backup = (main + 11) % kNumUhfChannels;
    if (backup == main) backup = (backup + 1) % kNumUhfChannels;
    cell.main = Channel{main, ChannelWidth::kW5};
    cell.backup = Channel{backup, ChannelWidth::kW5};
    layout.cells.push_back(cell);
  }

  // -- Clients: clustered around the AP, confined to its tile --------------
  Rng client_rng(DeriveSeed(params.seed, "city.clients"));
  for (CellPlan& cell : layout.cells) {
    const TileRect rect = layout.partition.Rect(cell.tile);
    cell.clients.reserve(static_cast<std::size_t>(params.clients_per_ap));
    for (int k = 0; k < params.clients_per_ap; ++k) {
      const double angle = client_rng.Uniform(0.0, 2.0 * 3.141592653589793);
      const double radius =
          params.cell_radius_m * std::sqrt(client_rng.Uniform01());
      Position p{cell.ap.x + radius * std::cos(angle),
                 cell.ap.y + radius * std::sin(angle)};
      cell.clients.push_back(ClampIntoRect(p, rect));
    }
  }

  // -- Scripted mics -------------------------------------------------------
  const int cells = static_cast<int>(layout.cells.size());
  for (int k = 0; k < params.num_mics; ++k) {
    const CellPlan& cell = layout.cells[static_cast<std::size_t>(k % cells)];
    MicActivation mic;
    mic.channel = cell.main.center;
    mic.on_time = (params.mic_start_s + k * params.mic_period_s) * kSecond;
    mic.off_time = mic.on_time + params.mic_duration_s * kSecond;
    layout.mics.push_back(mic);
    layout.mic_tile.push_back(cell.tile);
  }

  // -- Scripted roams ------------------------------------------------------
  for (int k = 0; k < params.num_roams; ++k) {
    RoamPlan roam;
    roam.from_cell = k % cells;
    roam.client_slot = k % params.clients_per_ap;
    const CellPlan& from = layout.cells[static_cast<std::size_t>(roam.from_cell)];
    // Nearest cell in a DIFFERENT tile (ties and absence fall back to the
    // nearest other cell, making the roam intra-tile but still
    // barrier-applied, so the code path stays uniform).
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    int best_any = -1;
    double best_any_d = std::numeric_limits<double>::infinity();
    for (int j = 0; j < cells; ++j) {
      if (j == roam.from_cell) continue;
      const CellPlan& to = layout.cells[static_cast<std::size_t>(j)];
      const double d = Distance(from.ap, to.ap);
      if (d < best_any_d) {
        best_any_d = d;
        best_any = j;
      }
      if (to.tile != from.tile && d < best_d) {
        best_d = d;
        best = j;
      }
    }
    roam.to_cell = best >= 0 ? best : best_any;
    if (roam.to_cell < 0) continue;  // Single-cell city: nothing to roam to.
    const CellPlan& to = layout.cells[static_cast<std::size_t>(roam.to_cell)];
    roam.arrive = ClampIntoRect(
        Position{to.ap.x + params.cell_radius_m / 3.0,
                 to.ap.y + params.cell_radius_m / 3.0},
        layout.partition.Rect(to.tile));
    roam.at = static_cast<SimTime>(
        (params.roam_start_s + k * params.roam_period_s) * kTicksPerSec);
    layout.roams.push_back(roam);
  }

  return layout;
}

}  // namespace whitefi::shard
