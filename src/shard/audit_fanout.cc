#include "shard/audit_fanout.h"

namespace whitefi::shard {

InvariantAuditor& AuditFanout::Add(const AuditConfig& config) {
  auditors_.push_back(std::make_unique<InvariantAuditor>(config));
  return *auditors_.back();
}

void AuditFanout::AttachAll(World& world) {
  for (auto& auditor : auditors_) auditor->Attach(world);
}

bool AuditFanout::ok() const {
  for (const auto& auditor : auditors_) {
    if (!auditor->ok()) return false;
  }
  return true;
}

std::uint64_t AuditFanout::violation_count() const {
  std::uint64_t total = 0;
  for (const auto& auditor : auditors_) total += auditor->violation_count();
  return total;
}

const Violation* AuditFanout::first_violation() const {
  for (const auto& auditor : auditors_) {
    if (const Violation* v = auditor->first_violation(); v != nullptr) {
      return v;
    }
  }
  return nullptr;
}

void AuditFanout::OnTransmitStart(SimTime now, const RadioPort& tx,
                                  const Channel& channel, SimTime duration) {
  for (auto& a : auditors_) a->OnTransmitStart(now, tx, channel, duration);
}

void AuditFanout::OnMacTiming(const RadioPort& radio, const PhyTiming& timing) {
  for (auto& a : auditors_) a->OnMacTiming(radio, timing);
}

void AuditFanout::OnNodeTuned(SimTime now, int node, const Channel& channel) {
  for (auto& a : auditors_) a->OnNodeTuned(now, node, channel);
}

void AuditFanout::OnClientDisconnected(SimTime now, int node) {
  for (auto& a : auditors_) a->OnClientDisconnected(now, node);
}

void AuditFanout::OnClientReconnected(SimTime now, int node) {
  for (auto& a : auditors_) a->OnClientReconnected(now, node);
}

void AuditFanout::OnChirp(SimTime now, int node) {
  for (auto& a : auditors_) a->OnChirp(now, node);
}

}  // namespace whitefi::shard
