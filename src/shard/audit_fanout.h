// AuditFanout — one auditor per AP cell behind a single AuditHooks seam.
//
// The Observability bundle carries exactly one AuditHooks pointer, and an
// InvariantAuditor audits exactly one AP (its convergence reference).  A
// city tile hosts many AP cells, so the fanout multiplexes: every hook
// fires on every per-cell auditor (each one keeps its own full
// book-conservation union — hooks are cheap and unfiltered by design,
// matching the single-auditor semantics), while the per-cell registration
// (RegisterAp / RegisterClient) scopes the protocol invariants to that
// cell's nodes.
#pragma once

#include <memory>
#include <vector>

#include "audit/audit.h"

namespace whitefi::shard {

/// Fans AuditHooks out to one InvariantAuditor per AP cell.
class AuditFanout : public AuditHooks {
 public:
  /// Adds (and owns) a fresh per-cell auditor.
  InvariantAuditor& Add(const AuditConfig& config);

  /// Attaches every auditor to `world` (after World construction).
  void AttachAll(World& world);

  const std::vector<std::unique_ptr<InvariantAuditor>>& auditors() const {
    return auditors_;
  }

  /// True iff every per-cell auditor is clean.
  bool ok() const;

  /// Total violations across cells.
  std::uint64_t violation_count() const;

  /// The first violation in cell order, or nullptr when clean.
  const Violation* first_violation() const;

  // -- AuditHooks ----------------------------------------------------------
  void OnTransmitStart(SimTime now, const RadioPort& tx,
                       const Channel& channel, SimTime duration) override;
  void OnMacTiming(const RadioPort& radio, const PhyTiming& timing) override;
  void OnNodeTuned(SimTime now, int node, const Channel& channel) override;
  void OnClientDisconnected(SimTime now, int node) override;
  void OnClientReconnected(SimTime now, int node) override;
  void OnChirp(SimTime now, int node) override;

 private:
  std::vector<std::unique_ptr<InvariantAuditor>> auditors_;
};

}  // namespace whitefi::shard
