#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/config.h"

namespace whitefi {
namespace {

/// Metric names, resolved lazily per injection kind.
constexpr char kInjectedMetric[] = "whitefi.fault.injected";

bool AnyWindow(const std::vector<FaultWindow>& windows, SimTime t) {
  for (const FaultWindow& w : windows) {
    if (w.Covers(t)) return true;
  }
  return false;
}

/// Parses "a-b" (seconds, either side possibly fractional) into a window.
FaultWindow ParseWindow(const std::string& item, const std::string& key) {
  const auto dash = item.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= item.size()) {
    throw std::runtime_error("fault window '" + item + "' in " + key +
                             " must be from-until in seconds");
  }
  FaultWindow w;
  try {
    const double from_s = std::stod(item.substr(0, dash));
    const double until_s = std::stod(item.substr(dash + 1));
    w.from = static_cast<SimTime>(from_s * kTicksPerSec);
    w.until = static_cast<SimTime>(until_s * kTicksPerSec);
  } catch (const std::exception&) {
    throw std::runtime_error("fault window '" + item + "' in " + key +
                             " is not numeric");
  }
  if (w.until <= w.from) {
    throw std::runtime_error("fault window '" + item + "' in " + key +
                             " must end after it starts");
  }
  return w;
}

std::vector<FaultWindow> ParseWindows(const ConfigFile& config,
                                      const std::string& key) {
  std::vector<FaultWindow> windows;
  for (const std::string& item : config.GetList(key)) {
    windows.push_back(ParseWindow(item, key));
  }
  return windows;
}

}  // namespace

bool FaultPlan::Empty() const {
  return !frame_loss.has_value() && beacon_drop_p == 0.0 &&
         chirp_drop_p == 0.0 && control_corrupt_p == 0.0 &&
         scanner_outages.empty() && stale_scan_p == 0.0 &&
         miss_chirp_p == 0.0 && false_incumbent_p == 0.0 &&
         miss_incumbent_p == 0.0 && geodb_outages.empty() &&
         geodb_staleness == 0.0 && storms.empty() && push_storms.empty();
}

FaultPlan ParseFaultPlan(const ConfigFile& config) {
  FaultPlan plan;
  if (config.Has("fault.ge_p_enter_bad") || config.Has("fault.ge_p_exit_bad") ||
      config.Has("fault.ge_loss_good") || config.Has("fault.ge_loss_bad")) {
    GilbertElliottParams ge;
    ge.p_enter_bad = config.GetDouble("fault.ge_p_enter_bad", ge.p_enter_bad);
    ge.p_exit_bad = config.GetDouble("fault.ge_p_exit_bad", ge.p_exit_bad);
    ge.loss_good = config.GetDouble("fault.ge_loss_good", ge.loss_good);
    ge.loss_bad = config.GetDouble("fault.ge_loss_bad", ge.loss_bad);
    plan.frame_loss = ge;
  }
  plan.frame_loss_windows = ParseWindows(config, "fault.frame_loss_windows");
  plan.beacon_drop_p = config.GetDouble("fault.beacon_drop_p", 0.0);
  plan.chirp_drop_p = config.GetDouble("fault.chirp_drop_p", 0.0);
  plan.control_corrupt_p = config.GetDouble("fault.control_corrupt_p", 0.0);
  plan.scanner_outages = ParseWindows(config, "fault.scanner_outages");
  plan.stale_scan_p = config.GetDouble("fault.stale_scan_p", 0.0);
  plan.miss_chirp_p = config.GetDouble("fault.miss_chirp_p", 0.0);
  plan.false_incumbent_p = config.GetDouble("fault.false_incumbent_p", 0.0);
  plan.miss_incumbent_p = config.GetDouble("fault.miss_incumbent_p", 0.0);
  plan.geodb_outages = ParseWindows(config, "fault.geodb_outages");
  plan.geodb_staleness =
      config.GetDouble("fault.geodb_staleness_s", 0.0) * kSecond;
  if (config.Has("fault.storm_start_s") || config.Has("fault.storm_mics")) {
    ChurnStorm storm;
    storm.start = static_cast<SimTime>(
        config.GetDouble("fault.storm_start_s", 0.0) * kTicksPerSec);
    storm.duration = static_cast<SimTime>(
        config.GetDouble("fault.storm_duration_s", 10.0) * kTicksPerSec);
    storm.mics = static_cast<int>(config.GetInt("fault.storm_mics", 1));
    storm.mean_on = static_cast<SimTime>(
        config.GetDouble("fault.storm_mean_on_s", 2.0) * kTicksPerSec);
    storm.mean_off = static_cast<SimTime>(
        config.GetDouble("fault.storm_mean_off_s", 3.0) * kTicksPerSec);
    plan.storms.push_back(storm);
  }
  if (config.Has("fault.push_storm_start_s") ||
      config.Has("fault.push_storm_venues")) {
    PushStorm storm;
    storm.start = static_cast<SimTime>(
        config.GetDouble("fault.push_storm_start_s", 0.0) * kTicksPerSec);
    storm.duration = static_cast<SimTime>(
        config.GetDouble("fault.push_storm_duration_s", 10.0) * kTicksPerSec);
    storm.venues = static_cast<int>(config.GetInt("fault.push_storm_venues", 1));
    storm.mean_on = static_cast<SimTime>(
        config.GetDouble("fault.push_storm_mean_on_s", 2.0) * kTicksPerSec);
    storm.mean_off = static_cast<SimTime>(
        config.GetDouble("fault.push_storm_mean_off_s", 3.0) * kTicksPerSec);
    storm.radius_km = config.GetDouble("fault.push_storm_radius_km", 1.0);
    storm.spread_km = config.GetDouble("fault.push_storm_spread_km", 2.0);
    plan.push_storms.push_back(storm);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {
  if (plan_.frame_loss) {
    const GilbertElliottParams& ge = *plan_.frame_loss;
    for (double p : {ge.p_enter_bad, ge.p_exit_bad, ge.loss_good, ge.loss_bad}) {
      if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "Gilbert-Elliott probabilities must lie in [0, 1]");
      }
    }
  }
  for (double p : {plan_.beacon_drop_p, plan_.chirp_drop_p,
                   plan_.control_corrupt_p, plan_.stale_scan_p,
                   plan_.miss_chirp_p, plan_.false_incumbent_p,
                   plan_.miss_incumbent_p}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("fault probabilities must lie in [0, 1]");
    }
  }
  for (const ChurnStorm& storm : plan_.storms) {
    if (storm.mics < 0) {
      throw std::invalid_argument("storm mic count must be non-negative");
    }
    if (storm.mics > 0 && (storm.duration <= 0 || storm.mean_on <= 0)) {
      throw std::invalid_argument(
          "storm duration and mean_on must be positive");
    }
  }
  for (const PushStorm& storm : plan_.push_storms) {
    if (storm.venues < 0) {
      throw std::invalid_argument("push storm venue count must be non-negative");
    }
    if (storm.venues > 0 && (storm.duration <= 0 || storm.mean_on <= 0)) {
      throw std::invalid_argument(
          "push storm duration and mean_on must be positive");
    }
    if (storm.radius_km <= 0.0 || storm.spread_km < 0.0) {
      throw std::invalid_argument(
          "push storm radius must be positive and spread non-negative");
    }
  }
}

void FaultInjector::SetObservability(const Observability& obs) { obs_ = obs; }

const char* FaultInjector::Note(SimTime now, const char* what, int node) {
  ++injected_;
  MetricsRegistry::Count(obs_.metrics, kInjectedMetric);
  if (obs_.trace != nullptr) {
    TraceEvent event;
    event.at_us = now;
    event.kind = TraceEventKind::kFaultInjected;
    event.node = node;
    event.detail = what;
    obs_.trace->Append(event);
  }
  return what;
}

bool FaultInjector::InFrameLossWindow(SimTime now) const {
  return plan_.frame_loss_windows.empty() ||
         AnyWindow(plan_.frame_loss_windows, now);
}

const char* FaultInjector::FrameFault(SimTime now, FrameType type,
                                      int rx_node) {
  // Targeted control-plane drops come first: they model interference
  // specific to the frame's role, independent of the burst channel.
  if (type == FrameType::kBeacon && plan_.beacon_drop_p > 0.0 &&
      rng_.Bernoulli(plan_.beacon_drop_p)) {
    return Note(now, "beacon_drop", rx_node);
  }
  if (type == FrameType::kChirp && plan_.chirp_drop_p > 0.0 &&
      rng_.Bernoulli(plan_.chirp_drop_p)) {
    return Note(now, "chirp_drop", rx_node);
  }
  if (plan_.control_corrupt_p > 0.0 && type != FrameType::kData &&
      type != FrameType::kAck && rng_.Bernoulli(plan_.control_corrupt_p)) {
    return Note(now, "control_corrupt", rx_node);
  }
  if (plan_.frame_loss && InFrameLossWindow(now)) {
    const GilbertElliottParams& ge = *plan_.frame_loss;
    bool& bad = ge_bad_[rx_node];
    const bool was_bad = bad;
    if (bad) {
      if (rng_.Bernoulli(ge.p_exit_bad)) bad = false;
    } else {
      if (rng_.Bernoulli(ge.p_enter_bad)) bad = true;
    }
    if (bad != was_bad && obs_.trace != nullptr) {
      TraceEvent event;
      event.at_us = now;
      event.kind =
          bad ? TraceEventKind::kFaultInjected : TraceEventKind::kFaultCleared;
      event.node = rx_node;
      event.detail = bad ? "ge_bad_state" : "ge_good_state";
      obs_.trace->Append(event);
    }
    const double loss = bad ? ge.loss_bad : ge.loss_good;
    if (loss > 0.0 && rng_.Bernoulli(loss)) {
      return Note(now, "ge_loss", rx_node);
    }
  }
  return nullptr;
}

bool FaultInjector::ScannerDown(SimTime now) const {
  return AnyWindow(plan_.scanner_outages, now);
}

bool FaultInjector::StaleScan(SimTime now) {
  if (plan_.stale_scan_p <= 0.0 || !rng_.Bernoulli(plan_.stale_scan_p)) {
    return false;
  }
  Note(now, "stale_scan", -1);
  return true;
}

bool FaultInjector::MissChirp(SimTime now) {
  if (plan_.miss_chirp_p <= 0.0 || !rng_.Bernoulli(plan_.miss_chirp_p)) {
    return false;
  }
  Note(now, "miss_chirp", -1);
  return true;
}

bool FaultInjector::FalseIncumbent(SimTime now) {
  if (plan_.false_incumbent_p <= 0.0 ||
      !rng_.Bernoulli(plan_.false_incumbent_p)) {
    return false;
  }
  Note(now, "false_incumbent", -1);
  return true;
}

bool FaultInjector::MissIncumbent(SimTime now) {
  if (plan_.miss_incumbent_p <= 0.0 ||
      !rng_.Bernoulli(plan_.miss_incumbent_p)) {
    return false;
  }
  Note(now, "miss_incumbent", -1);
  return true;
}

bool FaultInjector::GeoDbAvailable(Us now) const {
  return !AnyWindow(plan_.geodb_outages, static_cast<SimTime>(now));
}

Us FaultInjector::GeoDbServedTime(Us now) const {
  const Us served = now - plan_.geodb_staleness;
  return served < 0.0 ? 0.0 : served;
}

std::vector<MicActivation> FaultInjector::ExpandStorms(
    const std::vector<UhfIndex>& channels) {
  std::vector<MicActivation> mics;
  if (channels.empty()) return mics;
  for (const ChurnStorm& storm : plan_.storms) {
    for (int m = 0; m < storm.mics; ++m) {
      SimTime t = storm.start;
      const SimTime end = storm.start + storm.duration;
      while (t < end) {
        MicActivation mic;
        mic.channel = channels[rng_.Index(channels.size())];
        const auto on = static_cast<SimTime>(
            rng_.Exponential(static_cast<double>(storm.mean_on)));
        mic.on_time = static_cast<Us>(t);
        mic.off_time = static_cast<Us>(std::min(end, t + std::max<SimTime>(
                                                          on, kTicksPerMs)));
        if (mic.off_time > mic.on_time) mics.push_back(mic);
        const auto off = static_cast<SimTime>(
            rng_.Exponential(static_cast<double>(storm.mean_off)));
        t = static_cast<SimTime>(mic.off_time) + std::max<SimTime>(off, 1);
      }
    }
  }
  std::sort(mics.begin(), mics.end(),
            [](const MicActivation& a, const MicActivation& b) {
              return a.on_time < b.on_time;
            });
  return mics;
}

std::vector<StormVenue> FaultInjector::ExpandPushStorms(
    const std::vector<UhfIndex>& channels) {
  std::vector<StormVenue> venues;
  if (channels.empty()) return venues;
  for (const PushStorm& storm : plan_.push_storms) {
    for (int v = 0; v < storm.venues; ++v) {
      // One fixed location and channel per churner: the same venue keeps
      // re-activating, which is how real schedules (performances at one
      // theater) behave — and what makes a push storm distinguishable
      // from random noise at the subscribers.
      StormVenue venue;
      venue.channel = channels[rng_.Index(channels.size())];
      const double r = storm.spread_km * std::sqrt(rng_.Uniform01());
      const double theta = rng_.Uniform(0.0, 2.0 * M_PI);
      venue.x_km = r * std::cos(theta);
      venue.y_km = r * std::sin(theta);
      venue.radius_km = storm.radius_km;
      SimTime t = storm.start;
      const SimTime end = storm.start + storm.duration;
      while (t < end) {
        const auto on = static_cast<SimTime>(
            rng_.Exponential(static_cast<double>(storm.mean_on)));
        StormVenue window = venue;
        window.from = static_cast<Us>(t);
        window.until = static_cast<Us>(
            std::min(end, t + std::max<SimTime>(on, kTicksPerMs)));
        if (window.until > window.from) venues.push_back(window);
        const auto off = static_cast<SimTime>(
            rng_.Exponential(static_cast<double>(storm.mean_off)));
        t = static_cast<SimTime>(window.until) + std::max<SimTime>(off, 1);
      }
    }
  }
  std::sort(venues.begin(), venues.end(),
            [](const StormVenue& a, const StormVenue& b) {
              return a.from < b.from;
            });
  return venues;
}

std::vector<FaultInjector::WindowEvent> FaultInjector::WindowEvents() const {
  std::vector<WindowEvent> events;
  auto add = [&events](const std::vector<FaultWindow>& windows,
                       const char* what) {
    for (const FaultWindow& w : windows) {
      events.push_back({w.from, true, what});
      events.push_back({w.until, false, what});
    }
  };
  add(plan_.scanner_outages, "scanner_outage");
  add(plan_.geodb_outages, "geodb_outage");
  add(plan_.frame_loss_windows, "frame_loss_window");
  for (const ChurnStorm& storm : plan_.storms) {
    if (storm.mics <= 0) continue;
    events.push_back({storm.start, true, "churn_storm"});
    events.push_back({storm.start + storm.duration, false, "churn_storm"});
  }
  for (const PushStorm& storm : plan_.push_storms) {
    if (storm.venues <= 0) continue;
    events.push_back({storm.start, true, "push_storm"});
    events.push_back({storm.start + storm.duration, false, "push_storm"});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const WindowEvent& a, const WindowEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

}  // namespace whitefi
