// Deterministic fault injection for the WhiteFi simulator.
//
// Real TVWS deployments degrade in dimensions the happy-path simulator
// never exercises: bursty frame loss on the control plane, scanner
// hardware outages and stale sweep results, SIFT false alarms and missed
// detections, unreachable or stale geo-location databases, and storms of
// incumbent churn.  `FaultPlan` declares those faults (directly or from a
// scenario config file's [fault] section); `FaultInjector` is the seeded
// runtime oracle the medium, scanners, and geo-db clients query at their
// injection points.
//
// Design rules:
//  * Null-by-default: a World without an injector (or with an Empty() plan)
//    takes exactly the same branches and draws exactly the same random
//    numbers as before this subsystem existed — bench outputs stay
//    byte-identical.
//  * Deterministic: the injector owns its own seeded Rng (never forked
//    from the World's stream), so enabling a fault cannot perturb the
//    random draws of unrelated components.
//  * Observable: every injection is counted in the metrics registry and
//    (for windowed faults) bracketed by kFaultInjected / kFaultCleared
//    EventTrace records, which round-trip through the JSONL export.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/frame.h"
#include "sim/time.h"
#include "spectrum/incumbents.h"
#include "util/rng.h"

namespace whitefi {

class ConfigFile;

/// A half-open activity window [from, until) in simulation ticks.
struct FaultWindow {
  SimTime from = 0;
  SimTime until = 0;

  bool Covers(SimTime t) const { return t >= from && t < until; }
};

/// Gilbert–Elliott two-state burst-loss channel, evaluated per receiver:
/// each frame considered at a receiver first advances that receiver's
/// good/bad state, then draws a loss with the state's probability.
struct GilbertElliottParams {
  double p_enter_bad = 0.0;  ///< Per-frame good -> bad transition.
  double p_exit_bad = 0.1;   ///< Per-frame bad -> good transition.
  double loss_good = 0.0;    ///< Drop probability in the good state.
  double loss_bad = 1.0;     ///< Drop probability in the bad state.
};

/// A storm of short-lived wireless-mic activations: `mics` mics toggling
/// on/off across the free channels for `duration`, starting at `start`.
struct ChurnStorm {
  SimTime start = 0;
  SimTime duration = 0;
  int mics = 0;
  SimTime mean_on = 2 * kTicksPerSec;   ///< Mean mic on-duration.
  SimTime mean_off = 3 * kTicksPerSec;  ///< Mean gap between activations.
};

/// A storm of geo-db push updates: `venues` protected-venue registrations
/// toggling on/off near the cell for `duration`, each activation and
/// deactivation fanning out as a push notification to every subscribed
/// geo-db session (and loading the service's request queue, since pushed
/// sessions re-query).  The geometric counterpart of ChurnStorm.
struct PushStorm {
  SimTime start = 0;
  SimTime duration = 0;
  int venues = 0;
  SimTime mean_on = 2 * kTicksPerSec;   ///< Mean protection window.
  SimTime mean_off = 3 * kTicksPerSec;  ///< Mean gap between windows.
  double radius_km = 1.0;               ///< Venue protection radius.
  double spread_km = 2.0;               ///< Venues scatter within this of
                                        ///< the cell origin.
};

/// One expanded push-storm venue: where, which channel, and when it is
/// protected.  The runtime registers these in the ground-truth database,
/// so the audited geometry and the pushes sessions receive always agree.
struct StormVenue {
  UhfIndex channel = 0;
  double x_km = 0.0;
  double y_km = 0.0;
  double radius_km = 1.0;
  Us from = 0.0;
  Us until = 0.0;
};

/// The declarative fault schedule.  Default-constructed = no faults.
struct FaultPlan {
  // -- Medium: frame loss ---------------------------------------------------
  /// Burst loss applied to frames that passed the SINR decode check.
  std::optional<GilbertElliottParams> frame_loss;
  /// When non-empty, burst loss only applies inside these windows.
  std::vector<FaultWindow> frame_loss_windows;
  /// Targeted control-plane faults: independent per-frame drop draws.
  double beacon_drop_p = 0.0;
  double chirp_drop_p = 0.0;
  /// Corruption of any control frame (beacon, chirp, switch, report): the
  /// frame airs but the payload is unusable, so the receiver discards it.
  double control_corrupt_p = 0.0;

  // -- Scanner --------------------------------------------------------------
  /// Scanner hardware down: dwells measure nothing, the chirp watch is
  /// deaf.  Applies to every scanner in the world.
  std::vector<FaultWindow> scanner_outages;
  /// Probability a completed dwell silently serves stale (previous) data.
  double stale_scan_p = 0.0;

  // -- SIFT detection -------------------------------------------------------
  /// Probability an audible chirp fails to register at the scanner.
  double miss_chirp_p = 0.0;
  /// Per-dwell probability of flagging a phantom incumbent.
  double false_incumbent_p = 0.0;
  /// Per-dwell probability of overlooking a real incumbent.
  double miss_incumbent_p = 0.0;

  // -- Geo-location database ------------------------------------------------
  /// Refresh attempts inside these windows fail (database unreachable).
  std::vector<FaultWindow> geodb_outages;
  /// The database serves data this far behind the query time.
  Us geodb_staleness = 0.0;

  // -- Incumbent churn ------------------------------------------------------
  std::vector<ChurnStorm> storms;
  /// Geo-db venue churn: each storm becomes a burst of venue
  /// activation/deactivation push updates (see src/geodb).
  std::vector<PushStorm> push_storms;

  /// True iff every field still holds its default (no fault configured).
  bool Empty() const;
};

/// Parses a FaultPlan from a config file's `fault.*` keys.  Window lists
/// are comma-separated `from-until` ranges in seconds, e.g.
/// `fault.scanner_outages = 3-8, 12.5-20`.  Returns an empty plan when no
/// fault key is present.
FaultPlan ParseFaultPlan(const ConfigFile& config);

/// The runtime fault oracle.  One per World; thread it via
/// WorldConfig::faults (non-owning, like the Observability sinks).
class FaultInjector {
 public:
  /// `seed` drives an Rng independent from every simulation stream.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }

  /// Attaches metrics / trace sinks (pointers may be null).
  void SetObservability(const Observability& obs);

  // -- Medium injection point ----------------------------------------------
  /// Consulted for every frame that passed the SINR decode check at a
  /// receiver.  Returns a reason string ("beacon_drop", "ge_loss", ...)
  /// when the frame must be dropped, nullptr to deliver normally.
  const char* FrameFault(SimTime now, FrameType type, int rx_node);

  // -- Scanner injection points --------------------------------------------
  /// True while the scanner hardware is down (outage window).
  bool ScannerDown(SimTime now) const;
  /// Draw: this dwell's measurement is silently discarded as stale.
  bool StaleScan(SimTime now);
  /// Draw: an audible chirp is not registered.
  bool MissChirp(SimTime now);
  /// Draw: a dwell reports a phantom incumbent.
  bool FalseIncumbent(SimTime now);
  /// Draw: a dwell overlooks a real incumbent.
  bool MissIncumbent(SimTime now);

  // -- Geo-db injection points ---------------------------------------------
  /// False while a refresh attempt at `now` would fail.
  bool GeoDbAvailable(Us now) const;
  /// The effective data timestamp a query at `now` is served from.
  Us GeoDbServedTime(Us now) const;

  /// Expands the plan's churn storms into a deterministic mic schedule
  /// over `channels` (typically the scenario map's free channels).
  std::vector<MicActivation> ExpandStorms(const std::vector<UhfIndex>& channels);

  /// Expands the plan's push storms into deterministic timed venues over
  /// `channels`.  Like ExpandStorms, draws come from the injector's own
  /// stream, so the expansion never perturbs simulation randomness.
  std::vector<StormVenue> ExpandPushStorms(
      const std::vector<UhfIndex>& channels);

  /// One windowed fault boundary, for trace emission by the World.
  struct WindowEvent {
    SimTime at = 0;
    bool inject = true;  ///< true = window opens, false = it closes.
    std::string what;    ///< e.g. "scanner_outage".
  };

  /// Every windowed fault's open/close boundary, sorted by time.
  std::vector<WindowEvent> WindowEvents() const;

  /// Total faults injected so far (all kinds).
  std::uint64_t InjectedCount() const { return injected_; }

 private:
  /// Counts an injection and appends a kFaultInjected trace record.
  const char* Note(SimTime now, const char* what, int node);
  bool InFrameLossWindow(SimTime now) const;

  FaultPlan plan_;
  Rng rng_;
  Observability obs_;
  std::uint64_t injected_ = 0;
  /// Gilbert–Elliott state per receiver node id (true = bad).
  std::map<int, bool> ge_bad_;
};

}  // namespace whitefi
