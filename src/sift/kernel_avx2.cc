// AVX2 flavor of the SIFT block kernel.
//
// Compiled into every x86 build via a per-function target("avx2")
// attribute — no -mavx2 build flag required — and only ever invoked
// through sift_kernel::Resolve(), which checks the CPU probe first.
//
// Byte-identity with the scalar kernel is structural, not approximate:
//  * the four window sums of a SIMD step are formed by W-1 lane-wise
//    vector adds of unaligned loads at consecutive offsets, so lane j
//    accumulates exactly the scalar left-associated sum of the same W
//    samples in the same order (no horizontal reduction, no
//    reassociation, denormals untouched — MXCSR FTZ/DAZ are never set);
//  * the burst state machine consumes those sums scalar, sample by
//    sample, sharing RunWarmup / RunMainScalarRange / SaveTail with the
//    scalar kernel;
//  * the noise-floor gate lifts to groups: a 4-sample group whose compare
//    mask is empty, while out of a burst and a full window past the last
//    above-threshold sample, is skipped whole (the scalar kernel would
//    skip each of its samples individually), and deep quiet stretches are
//    skipped 16 samples per compare.
#include "sift/kernel.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <limits>

namespace whitefi::sift_kernel {
namespace {

/// Horizontal max of 4 lanes.  Lambdas do not inherit the enclosing
/// function's target attribute, so the fold helper is a free function.
__attribute__((target("avx2"))) inline double HorizontalMax4(__m256d v) {
  const __m128d half =
      _mm_max_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(_mm_max_sd(half, _mm_unpackhi_pd(half, half)));
}

__attribute__((target("avx2"))) void RunBlockAvx2Impl(
    const Config& cfg, SiftCoreState& core, double* tail,
    std::vector<double>& merged, std::vector<DetectedBurst>& out,
    const double* x, std::size_t n) {
  detail::Machine m{core.last_above_sample, core.in_burst, core.burst_peak};
  const std::size_t warm =
      detail::RunWarmup(cfg, core, m, tail, merged, out, x, n);

  const std::size_t window = cfg.window;
  const auto wdiff = static_cast<std::ptrdiff_t>(window);
  const double thr = cfg.threshold;
  const double sum_thr = cfg.sum_threshold;
  const double inv = cfg.inv_window;
  const std::size_t base = core.samples_seen;
  std::ptrdiff_t last_above = m.last_above;
  bool in_burst = m.in_burst;
  double peak = m.peak;
  const __m256d thr_v = _mm256_set1_pd(thr);
  const __m256d sum_thr_v = _mm256_set1_pd(sum_thr);
  const __m256d inv_v = _mm256_set1_pd(inv);

  // Lane-wise running max of in-burst window averages, folded into `peak`
  // lazily (only when the scalar machine needs the up-to-date value).
  // Max over positive finite doubles is exact, associative, and
  // commutative, so any reduction order equals the scalar left-to-right
  // chain bit for bit; -inf is the identity.
  const __m256d neg_inf_v =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  __m256d peak_v = neg_inf_v;

  std::size_t i = warm;

  // Super-groups of two vectors: one branch decides eight samples, and the
  // two accumulator chains are independent, so they pipeline.  Any group
  // that cannot collapse drops to the 4-wide loop below (the slow path
  // settles only the first four samples; the second four re-enter here).
  while (i + 8 <= n) {
    const __m256d s4a = _mm256_loadu_pd(x + i);
    const __m256d s4b = _mm256_loadu_pd(x + i + 4);
    const auto above_a = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(s4a, thr_v, _CMP_GT_OQ)));
    const auto above_b = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(s4b, thr_v, _CMP_GT_OQ)));
    const unsigned above8 = above_a | (above_b << 4);
    if (!in_burst && above8 == 0 &&
        static_cast<std::ptrdiff_t>(base + i) - last_above >= wdiff) {
      // Whole super-group quiet (same argument as the 4-wide quiet skip:
      // last_above is unchanged and the gate distance only grows).
      i += 8;
      while (i + 16 <= n) {
        const __m256d qa =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i), thr_v, _CMP_GT_OQ);
        const __m256d qb =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 4), thr_v, _CMP_GT_OQ);
        const __m256d qc =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 8), thr_v, _CMP_GT_OQ);
        const __m256d qd =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 12), thr_v, _CMP_GT_OQ);
        const __m256d any =
            _mm256_or_pd(_mm256_or_pd(qa, qb), _mm256_or_pd(qc, qd));
        if (_mm256_movemask_pd(any) != 0) break;
        i += 16;
      }
      continue;
    }

    // Eight window sums as two independent 4-lane chains, each lane-wise
    // in the exact scalar order.
    const double* wbase = x + i + 1 - window;
    __m256d acc_a = _mm256_loadu_pd(wbase);
    __m256d acc_b = _mm256_loadu_pd(wbase + 4);
    for (std::size_t k = 1; k < window; ++k) {
      acc_a = _mm256_add_pd(acc_a, _mm256_loadu_pd(wbase + k));
      acc_b = _mm256_add_pd(acc_b, _mm256_loadu_pd(wbase + 4 + k));
    }
    const auto sa_a = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(acc_a, sum_thr_v, _CMP_GT_OQ)));
    const auto sa_b = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(acc_b, sum_thr_v, _CMP_GT_OQ)));
    if (in_burst ? (sa_a & sa_b) == 0xFu : (sa_a | sa_b) == 0) {
      // No lane of either group can flip the burst state: collapse all
      // eight (same identity argument as the 4-wide fast path).
      if (above8 != 0) {
        last_above = static_cast<std::ptrdiff_t>(base + i) +
                     (31 - __builtin_clz(above8));
      }
      if (in_burst) {
        peak_v = _mm256_max_pd(peak_v, _mm256_mul_pd(acc_a, inv_v));
        peak_v = _mm256_max_pd(peak_v, _mm256_mul_pd(acc_b, inv_v));
      }
      i += 8;
      continue;
    }

    {  // The scalar machine below reads and writes `peak`: fold first.
      const double gmax = HorizontalMax4(peak_v);
      if (gmax > peak) peak = gmax;
      peak_v = neg_inf_v;
    }
    alignas(32) double sums[4];
    _mm256_store_pd(sums, acc_a);
    for (std::size_t j = 0; j < 4; ++j) {
      const double s = x[i + j];
      const auto g = static_cast<std::ptrdiff_t>(base + i + j);
      if (s > thr) last_above = g;
      if (!in_burst && g - last_above >= wdiff) continue;
      const double sum = sums[j];
      if (!in_burst) {
        if (sum > sum_thr) {
          in_burst = true;
          peak = sum * inv;
          const double* w = x + i + j + 1 - window;
          core.burst_start_sample = base + i + j + 1 - window;
          for (std::size_t k = 0; k < window; ++k) {
            if (w[k] > thr) {
              core.burst_start_sample = base + i + j + 1 - window + k;
              break;
            }
          }
        }
      } else {
        const double average = sum * inv;
        if (average > peak) peak = average;
        if (!(sum > sum_thr)) {
          in_burst = false;
          core.burst_peak = peak;
          EmitBurst(cfg, core, out, static_cast<std::size_t>(last_above + 1));
        }
      }
    }
    i += 4;
  }

  while (i + 4 <= n) {
    const __m256d s4 = _mm256_loadu_pd(x + i);
    const int above =
        _mm256_movemask_pd(_mm256_cmp_pd(s4, thr_v, _CMP_GT_OQ));
    if (!in_burst && above == 0 &&
        static_cast<std::ptrdiff_t>(base + i) - last_above >= wdiff) {
      // Whole group quiet: no sample above threshold, so last_above is
      // unchanged and the per-sample gate holds for all four (it held at
      // the first and g only grows).  Then greedily extend the skip.
      i += 4;
      while (i + 16 <= n) {
        const __m256d a =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i), thr_v, _CMP_GT_OQ);
        const __m256d b =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 4), thr_v, _CMP_GT_OQ);
        const __m256d c =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 8), thr_v, _CMP_GT_OQ);
        const __m256d d =
            _mm256_cmp_pd(_mm256_loadu_pd(x + i + 12), thr_v, _CMP_GT_OQ);
        const __m256d any =
            _mm256_or_pd(_mm256_or_pd(a, b), _mm256_or_pd(c, d));
        if (_mm256_movemask_pd(any) != 0) break;
        i += 16;
      }
      continue;
    }

    // Four window sums, lane-wise in the exact scalar order: lane j of
    // acc after step k is x[i+j+1-W] + ... + x[i+j+1-W+k].
    const double* wbase = x + i + 1 - window;
    __m256d acc = _mm256_loadu_pd(wbase);
    for (std::size_t k = 1; k < window; ++k) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(wbase + k));
    }
    // Group fast paths: when no lane can change the in/out-of-burst state,
    // the whole state-machine step collapses to a last_above update (the
    // highest above-threshold lane, exactly where four scalar assignments
    // would leave it) and, in a burst, a peak update (max over the four
    // lane averages — > compares on positive finite doubles, so the
    // reduction tree equals the scalar left-to-right chain bit for bit).
    const int sums_above =
        _mm256_movemask_pd(_mm256_cmp_pd(acc, sum_thr_v, _CMP_GT_OQ));
    if (in_burst ? sums_above == 0xF : sums_above == 0) {
      if (above != 0) {
        last_above = static_cast<std::ptrdiff_t>(base + i) +
                     (31 - __builtin_clz(static_cast<unsigned>(above)));
      }
      if (in_burst) {
        peak_v = _mm256_max_pd(peak_v, _mm256_mul_pd(acc, inv_v));
      }
      i += 4;
      continue;
    }

    {  // The scalar machine below reads and writes `peak`: fold first.
      const double gmax = HorizontalMax4(peak_v);
      if (gmax > peak) peak = gmax;
      peak_v = neg_inf_v;
    }
    alignas(32) double sums[4];
    _mm256_store_pd(sums, acc);

    // Burst state machine, scalar over the precomputed sums (the scalar
    // kernel skips the sum on gated samples; computing it anyway touches
    // no observable state).
    for (std::size_t j = 0; j < 4; ++j) {
      const double s = x[i + j];
      const auto g = static_cast<std::ptrdiff_t>(base + i + j);
      if (s > thr) last_above = g;
      if (!in_burst && g - last_above >= wdiff) continue;
      const double sum = sums[j];
      if (!in_burst) {
        if (sum > sum_thr) {
          in_burst = true;
          peak = sum * inv;
          const double* w = x + i + j + 1 - window;
          core.burst_start_sample = base + i + j + 1 - window;
          for (std::size_t k = 0; k < window; ++k) {
            if (w[k] > thr) {
              core.burst_start_sample = base + i + j + 1 - window + k;
              break;
            }
          }
        }
      } else {
        const double average = sum * inv;
        if (average > peak) peak = average;
        if (!(sum > sum_thr)) {
          in_burst = false;
          core.burst_peak = peak;
          EmitBurst(cfg, core, out, static_cast<std::size_t>(last_above + 1));
        }
      }
    }
    i += 4;
  }

  // Sub-vector remainder through the shared scalar machine.
  {
    const double gmax = HorizontalMax4(peak_v);
    if (gmax > peak) peak = gmax;
  }
  m.last_above = last_above;
  m.in_burst = in_burst;
  m.peak = peak;
  detail::RunMainScalarRange(cfg, core, m, out, x, i, n);

  detail::SaveTail(cfg, tail, x, n);
  core.last_above_sample = m.last_above;
  core.in_burst = m.in_burst;
  core.burst_peak = m.peak;
  core.samples_seen += n;
}

}  // namespace

void RunBlockAvx2(const Config& cfg, SiftCoreState& core, double* tail,
                  std::vector<double>& merged, std::vector<DetectedBurst>& out,
                  const double* x, std::size_t n) {
  // Tiny blocks (the per-sample Step() shim, warmup-dominated fragments)
  // gain nothing from the vector loops but still pay the constant setup;
  // scalar is the byte-identical reference, so delegate before even
  // entering the target-attributed function.
  if (n < 32) {
    RunBlockScalar(cfg, core, tail, merged, out, x, n);
    return;
  }
  RunBlockAvx2Impl(cfg, core, tail, merged, out, x, n);
}

}  // namespace whitefi::sift_kernel

#else  // Non-x86 target: Resolve() never hands this out; keep the symbol.

namespace whitefi::sift_kernel {

void RunBlockAvx2(const Config& cfg, SiftCoreState& core, double* tail,
                  std::vector<double>& merged, std::vector<DetectedBurst>& out,
                  const double* x, std::size_t n) {
  RunBlockScalar(cfg, core, tail, merged, out, x, n);
}

}  // namespace whitefi::sift_kernel

#endif
