#include "sift/matcher.h"

#include <array>
#include <cmath>
#include <map>

namespace whitefi {

PatternMatcher::PatternMatcher(const MatcherParams& params) : params_(params) {}

std::optional<ChannelWidth> PatternMatcher::ClassifyPair(
    const DetectedBurst& first, const DetectedBurst& second) const {
  const Us gap = second.start - first.end;
  if (gap <= 0.0) return std::nullopt;
  for (ChannelWidth w : kAllWidths) {
    const PhyTiming timing = PhyTiming::ForWidth(w);
    const Us sifs = timing.Sifs();
    const Us ack = timing.AckDuration();
    const bool gap_ok = std::abs(gap - sifs) <= params_.gap_tolerance * sifs;
    const bool ack_ok =
        std::abs(second.Duration() - ack) <= params_.ack_tolerance * ack;
    const bool data_ok = first.Duration() >= params_.min_data_factor * ack;
    if (gap_ok && ack_ok && data_ok) return w;
  }
  return std::nullopt;
}

std::vector<ExchangeMatch> PatternMatcher::MatchAll(
    const std::vector<DetectedBurst>& bursts) const {
  std::vector<ExchangeMatch> matches;
  std::size_t i = 0;
  while (i + 1 < bursts.size()) {
    const auto width = ClassifyPair(bursts[i], bursts[i + 1]);
    if (width.has_value()) {
      matches.push_back(ExchangeMatch{*width, i, i + 1,
                                      bursts[i].Duration()});
      i += 2;  // Consume both bursts of the exchange.
    } else {
      ++i;
    }
  }
  return matches;
}

std::optional<ChannelWidth> PatternMatcher::DominantWidth(
    const std::vector<DetectedBurst>& bursts) const {
  std::map<ChannelWidth, int> votes;
  for (const ExchangeMatch& m : MatchAll(bursts)) ++votes[m.width];
  std::optional<ChannelWidth> best;
  int best_votes = 0;
  for (const auto& [width, count] : votes) {
    if (count > best_votes) {
      best = width;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace whitefi
