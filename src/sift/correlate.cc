#include "sift/correlate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace whitefi {

ChirpCorrelator::ChirpCorrelator(const ChirpCorrelatorParams& params)
    : params_(params) {
  if (params_.chirp_samples == 0) {
    throw std::invalid_argument("chirp_samples must be > 0");
  }
}

namespace {

/// Resolves the auto guard: a fixed fraction of the on-region (see the
/// guard_samples doc in correlate.h).
std::size_t EffectiveGuard(const ChirpCorrelatorParams& params) {
  if (params.guard_samples != 0) return params.guard_samples;
  return std::max<std::size_t>(32, params.chirp_samples / 4);
}

/// Prefix sums of x and x^2: window sums become two lookups, so every
/// candidate position costs O(1) and the whole scan stays O(n) with no
/// drifting incremental state.
struct PrefixSums {
  std::vector<double> sum;   // sum[i] = x[0] + ... + x[i-1].
  std::vector<double> sum2;  // Same for squares.

  explicit PrefixSums(std::span<const double> x)
      : sum(x.size() + 1, 0.0), sum2(x.size() + 1, 0.0) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      sum[i + 1] = sum[i] + x[i];
      sum2[i + 1] = sum2[i] + x[i] * x[i];
    }
  }

  double Sum(std::size_t begin, std::size_t end) const {
    return sum[end] - sum[begin];
  }
  double Sum2(std::size_t begin, std::size_t end) const {
    return sum2[end] - sum2[begin];
  }
};

}  // namespace

std::optional<ChirpDetection> ChirpCorrelator::DetectNcc(
    std::span<const double> samples) const {
  const std::size_t on = params_.chirp_samples;
  const std::size_t guard = EffectiveGuard(params_);
  const std::size_t total = on + 2 * guard;
  if (samples.size() < total) return std::nullopt;

  const PrefixSums pre(samples);
  const auto total_d = static_cast<double>(total);
  const auto on_d = static_cast<double>(on);
  // Template energy Σ(t - t̄)² for the 0/1 template with mean on/total.
  const double template_energy = on_d * (total_d - on_d) / total_d;

  bool found = false;
  ChirpDetection best;
  const std::size_t last = samples.size() - total;
  for (std::size_t p = 0; p <= last; ++p) {
    const double s_all = pre.Sum(p, p + total);
    const double s_on = pre.Sum(p + guard, p + guard + on);
    // Zero-mean correlation: Σ(t - t̄)(x - x̄) = S_on - S_all·on/T (the
    // x-mean term vanishes because the zero-mean template sums to 0).
    const double num = s_on - s_all * on_d / total_d;
    const double signal_energy =
        pre.Sum2(p, p + total) - s_all * s_all / total_d;
    const double den2 = template_energy * signal_energy;
    if (!(den2 > 0.0)) continue;  // Constant window: NCC undefined.
    const double score = num / std::sqrt(den2);
    if (!found || score > best.score) {
      found = true;
      best.position = p + guard;
      best.score = score;
    }
  }
  if (!found || best.score < params_.ncc_threshold) return std::nullopt;
  return best;
}

std::optional<ChirpDetection> ChirpCorrelator::DetectDot(
    std::span<const double> samples) const {
  const std::size_t on = params_.chirp_samples;
  const std::size_t guard = EffectiveGuard(params_);
  const std::size_t total = on + 2 * guard;
  if (samples.size() < total) return std::nullopt;

  const PrefixSums pre(samples);
  bool found = false;
  ChirpDetection best;
  const std::size_t last = samples.size() - total;
  for (std::size_t p = 0; p <= last; ++p) {
    // 0/1 template: the dot product is the on-region sum, minus the guard
    // sums so energy spilling past the template edges is penalized (a pure
    // on-sum would tie across every offset inside a long burst).
    const double s_on = pre.Sum(p + guard, p + guard + on);
    const double s_guard = pre.Sum(p, p + guard) +
                           pre.Sum(p + guard + on, p + total);
    const double score = s_on - s_guard;
    if (!found || score > best.score) {
      found = true;
      best.position = p + guard;
      best.score = score;
    }
  }
  if (!found) return std::nullopt;
  const double mean_on =
      pre.Sum(best.position, best.position + on) / static_cast<double>(on);
  if (mean_on < params_.amplitude_threshold) return std::nullopt;
  return best;
}

std::optional<ChirpDetection> ChirpCorrelator::Detect(
    ChirpDetectMethod method, std::span<const double> samples) const {
  switch (method) {
    case ChirpDetectMethod::kNcc:
      return DetectNcc(samples);
    case ChirpDetectMethod::kDot:
      return DetectDot(samples);
    case ChirpDetectMethod::kOok:
      break;
  }
  throw std::invalid_argument(
      "ChirpCorrelator handles ncc/dot; ook is the SiftDetector path");
}

std::optional<ChirpDetectMethod> ChirpDetectMethodFromString(
    std::string_view name) {
  if (name == "ook") return ChirpDetectMethod::kOok;
  if (name == "ncc") return ChirpDetectMethod::kNcc;
  if (name == "dot") return ChirpDetectMethod::kDot;
  return std::nullopt;
}

const char* ChirpDetectMethodName(ChirpDetectMethod method) {
  switch (method) {
    case ChirpDetectMethod::kOok:
      return "ook";
    case ChirpDetectMethod::kNcc:
      return "ncc";
    case ChirpDetectMethod::kDot:
      return "dot";
  }
  return "unknown";
}

}  // namespace whitefi
