// AVX-512 flavor of the SIFT block kernel: eight window sums per step.
//
// Same structure and byte-identity argument as kernel_avx2.cc — lane-wise
// left-associated vector adds form each window sum in the exact scalar
// order, the burst state machine runs scalar over the precomputed sums,
// and whole groups collapse only when no lane can flip the in/out-of-burst
// state.  Compiled behind a per-function target("avx512f") attribute so
// any x86 build carries it; only Resolve() (after the runtime probe) ever
// hands it out.
#include "sift/kernel.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <limits>

namespace whitefi::sift_kernel {
namespace {

/// Horizontal max of 8 lanes.  Lambdas do not inherit the enclosing
/// function's target attribute, so the fold helper is a free function.
__attribute__((target("avx512f"))) inline double HorizontalMax8(__m512d v) {
  return _mm512_reduce_max_pd(v);
}

__attribute__((target("avx512f"))) void RunBlockAvx512Impl(
    const Config& cfg, SiftCoreState& core, double* tail,
    std::vector<double>& merged, std::vector<DetectedBurst>& out,
    const double* x, std::size_t n) {
  detail::Machine m{core.last_above_sample, core.in_burst, core.burst_peak};
  const std::size_t warm =
      detail::RunWarmup(cfg, core, m, tail, merged, out, x, n);

  const std::size_t window = cfg.window;
  const auto wdiff = static_cast<std::ptrdiff_t>(window);
  const double thr = cfg.threshold;
  const double sum_thr = cfg.sum_threshold;
  const double inv = cfg.inv_window;
  const std::size_t base = core.samples_seen;
  std::ptrdiff_t last_above = m.last_above;
  bool in_burst = m.in_burst;
  double peak = m.peak;
  const __m512d thr_v = _mm512_set1_pd(thr);
  const __m512d sum_thr_v = _mm512_set1_pd(sum_thr);
  const __m512d inv_v = _mm512_set1_pd(inv);

  // Lane-wise running max of in-burst window averages, folded into `peak`
  // lazily (see kernel_avx2.cc: max over positive finite doubles is exact
  // and order-independent, -inf is the identity).
  const __m512d neg_inf_v =
      _mm512_set1_pd(-std::numeric_limits<double>::infinity());
  __m512d peak_v = neg_inf_v;

  std::size_t i = warm;
  while (i + 8 <= n) {
    const __m512d s8 = _mm512_loadu_pd(x + i);
    const unsigned above =
        _mm512_cmp_pd_mask(s8, thr_v, _CMP_GT_OQ);
    if (!in_burst && above == 0 &&
        static_cast<std::ptrdiff_t>(base + i) - last_above >= wdiff) {
      // Whole group quiet: last_above is unchanged and the per-sample gate
      // holds for all eight.  Then greedily extend the skip, 32 samples
      // per compare.
      i += 8;
      while (i + 32 <= n) {
        const __mmask8 a = _mm512_cmp_pd_mask(_mm512_loadu_pd(x + i), thr_v,
                                              _CMP_GT_OQ);
        const __mmask8 b = _mm512_cmp_pd_mask(_mm512_loadu_pd(x + i + 8),
                                              thr_v, _CMP_GT_OQ);
        const __mmask8 c = _mm512_cmp_pd_mask(_mm512_loadu_pd(x + i + 16),
                                              thr_v, _CMP_GT_OQ);
        const __mmask8 d = _mm512_cmp_pd_mask(_mm512_loadu_pd(x + i + 24),
                                              thr_v, _CMP_GT_OQ);
        if ((a | b | c | d) != 0) break;
        i += 32;
      }
      continue;
    }

    // Eight window sums, lane-wise in the exact scalar order.
    const double* wbase = x + i + 1 - window;
    __m512d acc = _mm512_loadu_pd(wbase);
    for (std::size_t k = 1; k < window; ++k) {
      acc = _mm512_add_pd(acc, _mm512_loadu_pd(wbase + k));
    }

    // Group fast paths (see kernel_avx2.cc for the identity argument).
    const unsigned sums_above =
        _mm512_cmp_pd_mask(acc, sum_thr_v, _CMP_GT_OQ);
    if (in_burst ? sums_above == 0xFFu : sums_above == 0) {
      if (above != 0) {
        last_above = static_cast<std::ptrdiff_t>(base + i) +
                     (31 - __builtin_clz(above));
      }
      if (in_burst) {
        peak_v = _mm512_max_pd(peak_v, _mm512_mul_pd(acc, inv_v));
      }
      i += 8;
      continue;
    }

    {  // The scalar machine below reads and writes `peak`: fold first.
      const double gmax = HorizontalMax8(peak_v);
      if (gmax > peak) peak = gmax;
      peak_v = neg_inf_v;
    }
    alignas(64) double sums[8];
    _mm512_store_pd(sums, acc);

    // Burst state machine, scalar over the precomputed sums.
    for (std::size_t j = 0; j < 8; ++j) {
      const double s = x[i + j];
      const auto g = static_cast<std::ptrdiff_t>(base + i + j);
      if (s > thr) last_above = g;
      if (!in_burst && g - last_above >= wdiff) continue;
      const double sum = sums[j];
      if (!in_burst) {
        if (sum > sum_thr) {
          in_burst = true;
          peak = sum * inv;
          const double* w = x + i + j + 1 - window;
          core.burst_start_sample = base + i + j + 1 - window;
          for (std::size_t k = 0; k < window; ++k) {
            if (w[k] > thr) {
              core.burst_start_sample = base + i + j + 1 - window + k;
              break;
            }
          }
        }
      } else {
        const double average = sum * inv;
        if (average > peak) peak = average;
        if (!(sum > sum_thr)) {
          in_burst = false;
          core.burst_peak = peak;
          EmitBurst(cfg, core, out, static_cast<std::size_t>(last_above + 1));
        }
      }
    }
    i += 8;
  }

  // Sub-vector remainder through the shared scalar machine.
  {
    const double gmax = HorizontalMax8(peak_v);
    if (gmax > peak) peak = gmax;
  }
  m.last_above = last_above;
  m.in_burst = in_burst;
  m.peak = peak;
  detail::RunMainScalarRange(cfg, core, m, out, x, i, n);

  detail::SaveTail(cfg, tail, x, n);
  core.last_above_sample = m.last_above;
  core.in_burst = m.in_burst;
  core.burst_peak = m.peak;
  core.samples_seen += n;
}

}  // namespace

void RunBlockAvx512(const Config& cfg, SiftCoreState& core, double* tail,
                    std::vector<double>& merged,
                    std::vector<DetectedBurst>& out, const double* x,
                    std::size_t n) {
  // Tiny blocks (the per-sample Step() shim, warmup-dominated fragments)
  // gain nothing from the vector loops but still pay the constant setup;
  // scalar is the byte-identical reference, so delegate before even
  // entering the target-attributed function.
  if (n < 32) {
    RunBlockScalar(cfg, core, tail, merged, out, x, n);
    return;
  }
  RunBlockAvx512Impl(cfg, core, tail, merged, out, x, n);
}

}  // namespace whitefi::sift_kernel

#else  // Non-x86 target: Resolve() never hands this out; keep the symbol.

namespace whitefi::sift_kernel {

void RunBlockAvx512(const Config& cfg, SiftCoreState& core, double* tail,
                    std::vector<double>& merged,
                    std::vector<DetectedBurst>& out, const double* x,
                    std::size_t n) {
  RunBlockScalar(cfg, core, tail, merged, out, x, n);
}

}  // namespace whitefi::sift_kernel

#endif
