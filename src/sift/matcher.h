// Width classification by Data->SIFS->ACK pattern matching (paper 4.2.1).
//
// Both a frame's duration and the SIFS that separates a data frame from its
// ACK are inversely proportional to channel width.  The matcher classifies
// a unicast exchange's width by requiring BOTH (a) the gap between two
// consecutive detected bursts to equal that width's SIFS and (b) the second
// burst's duration to equal that width's ACK duration.  ACKs are the
// smallest MAC frame (14 bytes), so even a 5 MHz ACK is shorter than any
// data frame at 20 MHz — the two conditions together make widths
// unambiguous.  Beacons are recognized the same way: the paper requires
// APs to send a CTS-to-self one SIFS after each beacon, and a CTS is the
// same size as an ACK.
#pragma once

#include <optional>
#include <vector>

#include "phy/timing.h"
#include "sift/detector.h"
#include "spectrum/channel.h"

namespace whitefi {

/// Matching tolerances.
struct MatcherParams {
  /// Allowed relative error on the SIFS gap (fraction of the nominal SIFS).
  double gap_tolerance = 0.45;
  /// Allowed relative error on the ACK duration.
  double ack_tolerance = 0.30;
  /// The first burst must exceed this multiple of the width's ACK duration
  /// to count as a data/beacon frame (rules out ACK-ACK confusions).
  double min_data_factor = 1.3;
};

/// One matched unicast (or beacon) exchange.
struct ExchangeMatch {
  ChannelWidth width = ChannelWidth::kW5;
  std::size_t data_burst = 0;  ///< Index of the data/beacon burst.
  std::size_t ack_burst = 0;   ///< Index of the ACK/CTS burst.
  Us data_duration = 0.0;      ///< Measured first-burst duration.
};

/// Classifies detected bursts into width-labelled exchanges.
class PatternMatcher {
 public:
  explicit PatternMatcher(const MatcherParams& params = {});

  /// Attempts to classify the pair (first, second): returns the width whose
  /// SIFS matches the gap and whose ACK duration matches the second burst.
  std::optional<ChannelWidth> ClassifyPair(const DetectedBurst& first,
                                           const DetectedBurst& second) const;

  /// Scans a burst list for all data->ACK exchanges.  Each burst is used in
  /// at most one exchange.
  std::vector<ExchangeMatch> MatchAll(
      const std::vector<DetectedBurst>& bursts) const;

  /// The width occurring most often among matches; nullopt if none matched.
  /// This is the "channel width of the transmitter" output of SIFT — the
  /// paper notes it is correct even when packet lengths are mis-estimated.
  std::optional<ChannelWidth> DominantWidth(
      const std::vector<DetectedBurst>& bursts) const;

 private:
  MatcherParams params_;
};

/// SIFT's report of a transmitter seen while sampling near one frequency.
/// The width is exact; the center frequency is known only to within
/// +/- W/2, i.e. the true center UHF channel is within HalfSpan(width)
/// channels of the scanned one (paper: output is (F +/- E, W), E = W/2).
struct SiftDetection {
  ChannelWidth width = ChannelWidth::kW5;
  int exchanges_matched = 0;
};

}  // namespace whitefi
