// Batched multi-channel SIFT — N lanes through one pass.
//
// A wideband dwell (or a simulated multi-channel sweep) produces one
// amplitude trace per channel; classifying them with N independent
// `SiftDetector`s costs N kernel dispatches, N tail/scratch allocations,
// and N cold passes over memory.  `SiftBatch` keeps the per-lane streaming
// state as a structure of arrays — a `SiftCoreState` vector, one flat
// chronological-tail array (lanes x window), one shared warmup scratch —
// and runs the same resolved block kernel (scalar or AVX2, see
// sift/kernel.h) across lanes back to back, so the kernel dispatch, the
// threshold constants, and the scratch stay hot while lane data streams
// through.
//
// Semantics contract: a `SiftBatch` over N lanes is byte-identical to N
// independent `SiftDetector`s fed the same per-lane blocks in any
// chunking — the noise-floor gate, burst backdating, and flush behavior
// are all per-lane (sift_simd_property_test pins this).  Lanes are
// independent streams; there is no cross-lane coupling beyond shared
// configuration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/obs.h"
#include "sift/detector.h"

namespace whitefi {

/// Structure-of-arrays batch of SIFT lanes sharing one kernel pass.
class SiftBatch {
 public:
  /// All lanes share one configuration (window, threshold, kernel choice).
  SiftBatch(const SiftParams& params, std::size_t lanes);

  std::size_t lanes() const { return cores_.size(); }

  /// The shared configuration.
  const SiftParams& params() const { return params_; }

  /// Processes one block of amplitude samples on one lane.
  void ProcessBlock(std::size_t lane, std::span<const double> samples);

  /// Processes one equal-length block per lane (blocks[i] feeds lane i).
  /// Blocks may differ in length; empty spans are skipped.
  void ProcessBlocks(std::span<const std::span<const double>> blocks);

  /// Flushes one lane's in-progress burst (treats its stream as ended).
  void Flush(std::size_t lane);

  /// Flushes every lane.
  void FlushAll();

  /// Returns and clears the bursts completed so far on one lane.
  std::vector<DetectedBurst> TakeBursts(std::size_t lane);

  /// One-shot: feeds traces[i] to lane i, flushes, and returns each lane's
  /// bursts.  Lanes beyond traces.size() are left untouched.
  std::vector<std::vector<DetectedBurst>> DetectAll(
      std::span<const std::span<const double>> traces);

  /// Resets every lane to the start-of-stream state (keeps configuration,
  /// kernel resolution, and observability sinks).
  void Reset();

  /// Resets one lane to the start-of-stream state, leaving the other lanes'
  /// streams untouched — the persistent-batch idiom for sweeps where each
  /// dwell restarts only the lane of the channel it sits on.
  void ResetLane(std::size_t lane);

  /// Name of the kernel the batch resolved to ("simd-avx2" or "scalar").
  const char* kernel_name() const;

  /// Attaches metrics/profiler sinks shared by all lanes (see
  /// SiftDetector::SetObservability).
  void SetObservability(const Observability& obs);

 private:
  SiftParams params_;
  void* kernel_ = nullptr;  ///< Resolved once; shared by all lanes.
  std::size_t window_ = 0;
  double inv_window_ = 0.0;
  double sum_threshold_ = 0.0;

  std::vector<SiftCoreState> cores_;     ///< Lane edge-machine states.
  std::vector<double> tails_;            ///< Flat lanes x window tails.
  std::vector<double> merged_;           ///< Shared warmup scratch.
  std::vector<std::vector<DetectedBurst>> completed_;  ///< Per lane.

  // Observability (optional, shared across lanes).
  PhaseProfiler* profiler_ = nullptr;
  Counter* bursts_counter_ = nullptr;
  Histogram* burst_us_ = nullptr;
};

}  // namespace whitefi
