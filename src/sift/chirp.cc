#include "sift/chirp.h"

#include <cmath>
#include <stdexcept>

namespace whitefi {

ChirpCodec::ChirpCodec(const ChirpCodecParams& params) : params_(params) {
  if (params_.quantum <= 0.0 || params_.base_duration <= 0.0) {
    throw std::invalid_argument("chirp durations must be positive");
  }
  if (params_.tolerance >= 0.5) {
    throw std::invalid_argument("tolerance must be < 0.5 for unambiguity");
  }
}

Us ChirpCodec::Encode(int id) const {
  if (id < 0 || id > params_.max_id) {
    throw std::out_of_range("chirp id out of range");
  }
  return params_.base_duration + static_cast<double>(id) * params_.quantum;
}

std::optional<int> ChirpCodec::Decode(Us duration) const {
  const double steps = (duration - params_.base_duration) / params_.quantum;
  const double rounded = std::round(steps);
  if (rounded < 0.0 || rounded > static_cast<double>(params_.max_id)) {
    return std::nullopt;
  }
  if (std::abs(steps - rounded) > params_.tolerance) return std::nullopt;
  return static_cast<int>(rounded);
}

std::optional<int> ChirpCodec::Decode(const DetectedBurst& burst) const {
  return Decode(burst.Duration());
}

}  // namespace whitefi
