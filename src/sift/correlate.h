// Correlation-based chirp start detection (ablation of paper Section 4.3).
//
// SIFT's OOK path finds a chirp by edge-detecting the amplitude envelope:
// the chirp is "the burst", and its start is wherever the moving average
// crossed the threshold.  That is cheap but its timing error grows with
// the ramp artifact and with noise near the threshold.  The classical
// alternative is matched-filter correlation: slide a rectangular on/off
// template (guard zeros, then the on-region, then guard zeros) across the
// trace and take the position with the best match score.
//
// Two correlation scores are implemented, both O(n) via sliding sums:
//
//  * Normalized cross-correlation (NCC) — the zero-mean template against
//    the zero-mean window, normalized by both energies; amplitude-scale
//    invariant, score in [-1, 1], accepted above `ncc_threshold`.
//  * Plain dot product — the template is 0/1 so the score is just the
//    on-region sum; cheapest possible, but amplitude-dependent, so
//    acceptance uses a mean-amplitude threshold on the on-region.
//
// bench_ablation_chirp_offset sweeps SNR and reports the detection-offset
// distribution (detected minus actual start, in samples) of the OOK
// decoder versus both correlators.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace whitefi {

/// How a chirp start position is estimated from an amplitude trace.
enum class ChirpDetectMethod {
  kOok,  ///< SIFT edge detection (the paper's path; see sift/detector.h).
  kNcc,  ///< Normalized cross-correlation against the on/off template.
  kDot,  ///< Dot-product (on-region sum) correlation.
};

/// Template geometry and acceptance thresholds for the correlators.
struct ChirpCorrelatorParams {
  /// On-region length in samples (chirp duration / sample period).
  std::size_t chirp_samples = 391;  // 400 us at 1.024 us/sample.
  /// Zero guard on each side of the on-region; penalizes candidate
  /// positions whose surroundings are not quiet.  0 (the default) scales
  /// the guard automatically to max(32, chirp_samples / 4): a guard that
  /// stays a fixed *fraction* of the template keeps the NCC contrast
  /// independent of chirp length (a tiny fixed guard on a long chirp
  /// makes the zero-mean template almost constant, and the score
  /// collapses into the envelope's own variance).
  std::size_t guard_samples = 0;
  /// Minimum NCC score to accept a detection.  Note the ceiling: the
  /// OFDM envelope is Rayleigh, so its within-burst variance caps the
  /// correlation against a flat 0/1 template near ~0.6 even at high SNR,
  /// while a noise-only trace's best-of-scan score stays below ~0.2.
  double ncc_threshold = 0.3;
  /// Minimum mean on-region amplitude to accept a dot-product detection
  /// (same scale as SiftParams::threshold).
  double amplitude_threshold = 6.0;
};

/// An accepted chirp detection.
struct ChirpDetection {
  std::size_t position = 0;  ///< Estimated chirp start (sample index).
  double score = 0.0;        ///< Winning correlation score.
};

/// Sliding-window chirp-start estimator over amplitude traces.
class ChirpCorrelator {
 public:
  explicit ChirpCorrelator(const ChirpCorrelatorParams& params = {});

  /// Best NCC match, or nullopt when no position clears ncc_threshold.
  std::optional<ChirpDetection> DetectNcc(
      std::span<const double> samples) const;

  /// Best dot-product match, or nullopt when the winning on-region's mean
  /// amplitude is below amplitude_threshold.
  std::optional<ChirpDetection> DetectDot(
      std::span<const double> samples) const;

  /// Unified entry point; kOok is not handled here (it is the
  /// SiftDetector path) and throws std::invalid_argument.
  std::optional<ChirpDetection> Detect(ChirpDetectMethod method,
                                       std::span<const double> samples) const;

  const ChirpCorrelatorParams& params() const { return params_; }

 private:
  ChirpCorrelatorParams params_;
};

/// Parses "ook" / "ncc" / "dot"; nullopt otherwise.
std::optional<ChirpDetectMethod> ChirpDetectMethodFromString(
    std::string_view name);

/// The inverse of ChirpDetectMethodFromString.
const char* ChirpDetectMethodName(ChirpDetectMethod method);

}  // namespace whitefi
