#include "sift/airtime.h"

#include <algorithm>

#include "spectrum/uhf.h"

namespace whitefi {

double BusyAirtimeFraction(const std::vector<DetectedBurst>& bursts,
                           Us window_start, Us window) {
  if (window <= 0.0) return 0.0;
  const Us window_end = window_start + window;
  Us busy = 0.0;
  for (const DetectedBurst& b : bursts) {
    const Us lo = std::max(b.start, window_start);
    const Us hi = std::min(b.end, window_end);
    if (hi > lo) busy += hi - lo;
  }
  return std::clamp(busy / window, 0.0, 1.0);
}

Us TotalBurstAirtime(const std::vector<DetectedBurst>& bursts) {
  Us total = 0.0;
  for (const DetectedBurst& b : bursts) total += b.Duration();
  return total;
}

BandObservation EmptyBandObservation() {
  return BandObservation(static_cast<std::size_t>(kNumUhfChannels));
}

}  // namespace whitefi
