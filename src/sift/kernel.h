// The SIFT block kernels and their dispatch.
//
// Both `SiftDetector` (one lane) and `SiftBatch` (N lanes, one pass) run
// the same kernel functions over a `SiftCoreState` plus owner-provided
// buffers.  Two implementations exist:
//
//  * RunBlockScalar — the portable kernel: the PR-3 block fast path
//    (pre-scaled threshold, one-compare noise-floor gate, unrolled W=5)
//    refactored to free-function form;
//  * RunBlockAvx2 / RunBlockAvx512 — the vectorized kernels (4 and 8
//    window sums per step), compiled with per-function target attributes
//    so a plain build still carries them and the runtime probe decides
//    which may execute.
//
// Byte-identity contract: for any input stream, any chunking, and any
// window, all kernels produce bit-equal DetectedBurst vectors.  The
// vector kernels keep every floating-point operation in the scalar order
// — each SIMD lane's window sum is the left-associated sum of the same W
// samples — and collapse state-machine steps only where the result is
// provably bit-equal (max reductions over positive finite doubles), so no
// reassociation ever occurs.  sift_simd_property_test pins this across
// random traces, denormals, and threshold-edge samples.
//
// Every per-sample quantity is defined chunking-independently so any split
// of a trace into blocks is byte-identical to any other:
//   * the window sum at global sample g is the left-associated sum, oldest
//     first, of the W chronological samples ending at g (virtual zeros
//     before the stream start);
//   * a burst opens at g when some sample in that window exceeds the
//     threshold AND sum > threshold * W, and dates its start at the oldest
//     above-threshold sample still in the window (a strong burst trips the
//     average from its very first sample, so the naive "window start"
//     would bias starts early, and SIFS gaps short, by several samples);
//   * a burst closes at the first g with sum <= threshold * W and ends at
//     the sample after the last above-threshold one.
//
// The "some sample above threshold" gate is what makes the noise floor
// cheap: out of a burst, a sample more than one window length past the
// last above-threshold sample cannot trip the average (every window sample
// is at or below the threshold), so the kernel skips the sum entirely —
// one compare per quiet sample scalar, one compare per 16 (AVX2) or
// 32 (AVX-512) samples vectorized.
#pragma once

#include <cstddef>
#include <vector>

#include "sift/detector.h"

namespace whitefi::sift_kernel {

/// Loop-invariant kernel inputs, precomputed by the owning detector/batch.
struct Config {
  std::size_t window = 5;
  double threshold = 0.0;
  double sum_threshold = 0.0;  ///< threshold * window (pre-scaled compare).
  double inv_window = 0.0;     ///< 1 / window.
  Us sample_period = 1.024;
  Counter* bursts_counter = nullptr;   ///< Optional metric sink.
  Histogram* burst_us = nullptr;       ///< Optional metric sink.
};

/// One block-kernel invocation: advances `core` over the `n` samples at
/// `x`, maintaining the chronological `tail` (length cfg.window), using
/// `merged` as warmup scratch, appending completed bursts to `out`.
using KernelFn = void (*)(const Config& cfg, SiftCoreState& core, double* tail,
                          std::vector<double>& merged,
                          std::vector<DetectedBurst>& out, const double* x,
                          std::size_t n);

void RunBlockScalar(const Config& cfg, SiftCoreState& core, double* tail,
                    std::vector<double>& merged,
                    std::vector<DetectedBurst>& out, const double* x,
                    std::size_t n);

/// Defined in kernel_avx2.cc behind a per-function target("avx2")
/// attribute; only reachable through Resolve(), which refuses to hand it
/// out on hosts without AVX2.
void RunBlockAvx2(const Config& cfg, SiftCoreState& core, double* tail,
                  std::vector<double>& merged, std::vector<DetectedBurst>& out,
                  const double* x, std::size_t n);

/// Defined in kernel_avx512.cc behind a per-function target("avx512f")
/// attribute; only reachable through Resolve(), which refuses to hand it
/// out on hosts without AVX-512F.
void RunBlockAvx512(const Config& cfg, SiftCoreState& core, double* tail,
                    std::vector<double>& merged,
                    std::vector<DetectedBurst>& out, const double* x,
                    std::size_t n);

/// Resolves a kernel choice to a callable kernel.  kAuto consults the
/// process override, then WHITEFI_SIFT_KERNEL, then the CPU probe; kSimd
/// means the widest vector kernel the host can run.  Throws
/// std::invalid_argument when a vector kernel is forced on a host that
/// cannot execute it (flag parsing surfaces this as a configuration
/// error, exit 2).
KernelFn Resolve(SiftKernelChoice choice);

/// Human-readable name of a resolved kernel ("simd-avx512" /
/// "simd-avx2" / "scalar").
const char* KernelName(KernelFn fn);

/// Emits the lane's in-progress burst ending at `end_sample` (used by the
/// kernels on downward crossings and by Flush at stream end).
void EmitBurst(const Config& cfg, SiftCoreState& core,
               std::vector<DetectedBurst>& out, std::size_t end_sample);

namespace detail {

/// The mutable lane state a kernel keeps in locals/registers for the
/// duration of one block.
struct Machine {
  std::ptrdiff_t last_above;
  bool in_burst;
  double peak;
};

/// Warmup region: runs the first min(n, window-1) samples, whose windows
/// straddle tail ++ block, and returns how many were consumed.  Shared by
/// both kernels so the straddle math exists exactly once.
std::size_t RunWarmup(const Config& cfg, SiftCoreState& core, Machine& m,
                      const double* tail, std::vector<double>& merged,
                      std::vector<DetectedBurst>& out, const double* x,
                      std::size_t n);

/// Main-region samples [i0, i1) through the scalar per-sample machine
/// (the AVX2 kernel uses this for its sub-vector remainder).
void RunMainScalarRange(const Config& cfg, SiftCoreState& core, Machine& m,
                        std::vector<DetectedBurst>& out, const double* x,
                        std::size_t i0, std::size_t i1);

/// Persists the chronological tail for the next block's warmup windows.
void SaveTail(const Config& cfg, double* tail, const double* x, std::size_t n);

}  // namespace detail

}  // namespace whitefi::sift_kernel
