// SIFT — Signal Interpretation before Fourier Transform (paper 4.2.1).
//
// SIFT detects packet transmissions from raw time-domain amplitude samples
// without any FFT or decoding: a moving average over a short sliding window
// of sqrt(I^2+Q^2) values is compared against a fixed low threshold; an
// upward crossing marks a packet start, a downward crossing a packet end.
//
// The window must be shorter than the smallest gap SIFT has to preserve —
// the SIFS between a data frame and its ACK, which is 10 us (10 samples)
// for 20 MHz transmissions — so the paper (and this implementation) uses a
// 5-sample window.  The moving average, rather than instantaneous values,
// rides over the deep mid-packet amplitude dips of an OFDM envelope.
//
// Performance: the detector is the real-time core of the scanner — the
// USRP delivers a continuous ~1 MS/s stream — so ProcessBlock runs a block
// kernel rather than a per-sample state machine, and the block kernel
// itself ships in two flavors behind compile-time *and* runtime dispatch
// (src/util/cpu feature probe):
//
//  * a portable scalar kernel: pre-scaled threshold compare (sum >
//    threshold * window, no per-sample division), window sums formed
//    directly from the raw block, whole noise-floor stretches rejected
//    with one comparison per sample, fully unrolled for the default
//    5-sample window;
//  * vector kernels (x86 hosts): an AVX2 flavor (four window sums per
//    step) and an AVX-512 flavor (eight), both forming each lane's sum by
//    lane-wise left-associated vector adds — added in exactly the scalar
//    order, so the burst stream is byte-identical — with noise-floor
//    stretches skipped a cache line at a time and whole groups of the
//    burst state machine collapsed when no lane can flip the state.
//
// Dispatch resolves per detector: an explicit SiftParams::kernel wins,
// then the process-wide override (SetSiftKernelOverride, the benches'
// --detector flag), then the WHITEFI_SIFT_KERNEL environment variable,
// then the CPU probe.  Every path produces byte-identical bursts under
// any chunking of the stream — per-sample Step(), USRP 2048-sample
// blocks, or one shot (see sift_block_test and sift_simd_property_test).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/obs.h"
#include "util/units.h"

namespace whitefi {

/// Which block kernel a detector runs.
enum class SiftKernelChoice {
  kAuto,    ///< Resolve via override, environment, then CPU probe.
  kSimd,    ///< Best vector kernel for the host (throws where unsupported).
  kScalar,  ///< Force the portable scalar kernel.
  kAvx2,    ///< Force the 256-bit AVX2 kernel specifically.
  kAvx512,  ///< Force the 512-bit AVX-512 kernel specifically.
};

/// Process-wide kernel override consulted when a detector's params say
/// kAuto — the `--detector=block|simd|scalar` flag sets this ("block" is
/// the default automatic dispatch).  Thread-safety: set it before
/// spawning workers; detectors read it at construction.
void SetSiftKernelOverride(SiftKernelChoice choice);
SiftKernelChoice GetSiftKernelOverride();

/// SIFT detector configuration.
struct SiftParams {
  /// Sliding-window length in samples.  Must stay below the minimum SIFS
  /// (10 samples at 20 MHz); the paper uses 5.
  int window = 5;

  /// Amplitude threshold.  The paper fixes this at a low value; 6.0 sits
  /// ~4x above the default synthesized noise-floor mean, which places the
  /// detection cliff near 96 dB attenuation as in Figure 7.
  double threshold = 6.0;

  /// Sample period of the input stream (USRP: 1.024 us).
  Us sample_period = 1.024;

  /// Kernel selection for this detector (kAuto = dispatch).
  SiftKernelChoice kernel = SiftKernelChoice::kAuto;
};

/// One detected on-air burst.
struct DetectedBurst {
  Us start = 0.0;  ///< Burst start (us, relative to the trace start).
  Us end = 0.0;    ///< Burst end (us).
  double peak_average = 0.0;  ///< Maximum windowed average within the burst.

  /// Burst length (us).
  Us Duration() const { return end - start; }
};

/// Streaming per-lane state of the SIFT edge machine.  One lane per
/// detector; `SiftBatch` keeps a structure-of-arrays of these so N
/// channels share one pass.  The chronological `tail` buffer (last
/// `window` samples, zero-filled before the stream starts) lives with the
/// owner so a batch can pack all lanes' tails into one flat array.
struct SiftCoreState {
  std::size_t samples_seen = 0;
  bool in_burst = false;
  std::size_t burst_start_sample = 0;
  /// Index of the last above-threshold sample (-1 = none yet).
  std::ptrdiff_t last_above_sample = -1;
  double burst_peak = 0.0;
};

/// Streaming SIFT edge detector.
///
/// Feed sample blocks (the USRP delivers 2048 at a time) via ProcessBlock;
/// completed bursts accumulate and can be taken with TakeBursts.  The
/// convenience Detect() runs a whole trace through a fresh detector.
class SiftDetector {
 public:
  explicit SiftDetector(const SiftParams& params);

  /// Processes one block of amplitude samples.
  void ProcessBlock(std::span<const double> samples);

  /// Single-sample compatibility shim: routes through the block kernel so
  /// sample-at-a-time feeding stays byte-identical to any block chunking.
  void Step(double sample);

  /// Flushes any in-progress burst (treats the stream as ended).
  void Flush();

  /// Returns and clears the bursts completed so far.
  std::vector<DetectedBurst> TakeBursts();

  /// One-shot detection over a full trace (processes + flushes).
  std::vector<DetectedBurst> Detect(std::span<const double> samples);

  /// The configuration in use.
  const SiftParams& params() const { return params_; }

  /// Name of the kernel this detector resolved to ("simd-avx512",
  /// "simd-avx2", or "scalar").
  const char* kernel_name() const;

  /// Attaches metrics/profiler sinks (pointers may be null): ProcessBlock
  /// runs under the "sift.detect" phase, completed bursts feed
  /// whitefi.sift.bursts and the whitefi.sift.burst_us histogram.
  void SetObservability(const Observability& obs);

 private:
  SiftParams params_;
  /// Resolved block kernel (see sift/kernel.h); type-erased here to keep
  /// the kernel machinery out of this header.
  void* kernel_ = nullptr;
  /// The last `window` samples in chronological order (zero-filled before
  /// the stream starts), so a block can seed its first window sums.
  std::vector<double> tail_;
  std::vector<double> merged_;  ///< Warmup scratch: tail_ ++ block head.
  SiftCoreState core_;
  double inv_window_ = 0.0;      ///< 1 / window, hoisted out of the kernel.
  double sum_threshold_ = 0.0;   ///< threshold * window (pre-scaled compare).
  std::vector<DetectedBurst> completed_;

  // Observability (optional).
  PhaseProfiler* profiler_ = nullptr;
  Counter* bursts_counter_ = nullptr;
  Histogram* burst_us_ = nullptr;
};

}  // namespace whitefi
