// SIFT — Signal Interpretation before Fourier Transform (paper 4.2.1).
//
// SIFT detects packet transmissions from raw time-domain amplitude samples
// without any FFT or decoding: a moving average over a short sliding window
// of sqrt(I^2+Q^2) values is compared against a fixed low threshold; an
// upward crossing marks a packet start, a downward crossing a packet end.
//
// The window must be shorter than the smallest gap SIFT has to preserve —
// the SIFS between a data frame and its ACK, which is 10 us (10 samples)
// for 20 MHz transmissions — so the paper (and this implementation) uses a
// 5-sample window.  The moving average, rather than instantaneous values,
// rides over the deep mid-packet amplitude dips of an OFDM envelope.
//
// Performance: the detector is the real-time core of the scanner — the
// USRP delivers a continuous ~1 MS/s stream — so ProcessBlock runs a block
// kernel rather than a per-sample state machine.  The window average is
// compared in pre-scaled form (sum > threshold * window, no per-sample
// division), the window sum is formed directly from the raw block (no ring
// buffer, no modulo indexing), and while the detector is out of a burst
// whole noise-floor stretches are rejected with a single comparison per
// sample: the average of a window whose every sample is at or below the
// threshold cannot exceed it, so the sum is only evaluated within one
// window length of an above-threshold sample.  The default 5-sample window
// dispatches to a fully unrolled kernel.  Step() remains as the
// single-sample compatibility shim and routes through the same kernel, so
// any chunking of a trace — per-sample, USRP 2048-sample blocks, or one
// shot — produces byte-identical bursts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/obs.h"
#include "util/units.h"

namespace whitefi {

/// SIFT detector configuration.
struct SiftParams {
  /// Sliding-window length in samples.  Must stay below the minimum SIFS
  /// (10 samples at 20 MHz); the paper uses 5.
  int window = 5;

  /// Amplitude threshold.  The paper fixes this at a low value; 6.0 sits
  /// ~4x above the default synthesized noise-floor mean, which places the
  /// detection cliff near 96 dB attenuation as in Figure 7.
  double threshold = 6.0;

  /// Sample period of the input stream (USRP: 1.024 us).
  Us sample_period = 1.024;
};

/// One detected on-air burst.
struct DetectedBurst {
  Us start = 0.0;  ///< Burst start (us, relative to the trace start).
  Us end = 0.0;    ///< Burst end (us).
  double peak_average = 0.0;  ///< Maximum windowed average within the burst.

  /// Burst length (us).
  Us Duration() const { return end - start; }
};

/// Streaming SIFT edge detector.
///
/// Feed sample blocks (the USRP delivers 2048 at a time) via ProcessBlock;
/// completed bursts accumulate and can be taken with TakeBursts.  The
/// convenience Detect() runs a whole trace through a fresh detector.
class SiftDetector {
 public:
  explicit SiftDetector(const SiftParams& params);

  /// Processes one block of amplitude samples.
  void ProcessBlock(std::span<const double> samples);

  /// Single-sample compatibility shim: routes through the block kernel so
  /// sample-at-a-time feeding stays byte-identical to any block chunking.
  void Step(double sample);

  /// Flushes any in-progress burst (treats the stream as ended).
  void Flush();

  /// Returns and clears the bursts completed so far.
  std::vector<DetectedBurst> TakeBursts();

  /// One-shot detection over a full trace (processes + flushes).
  std::vector<DetectedBurst> Detect(std::span<const double> samples);

  /// The configuration in use.
  const SiftParams& params() const { return params_; }

  /// Attaches metrics/profiler sinks (pointers may be null): ProcessBlock
  /// runs under the "sift.detect" phase, completed bursts feed
  /// whitefi.sift.bursts and the whitefi.sift.burst_us histogram.
  void SetObservability(const Observability& obs);

 private:
  /// Block kernel.  KW is the compile-time window length for the unrolled
  /// fast path (KW == 0 selects the runtime-window generic path).
  template <int KW>
  void RunBlock(const double* x, std::size_t n);

  void EmitBurst(std::size_t end_sample);

  SiftParams params_;
  /// The last `window` samples in chronological order (zero-filled before
  /// the stream starts), so a block can seed its first window sums.
  std::vector<double> tail_;
  std::vector<double> merged_;  ///< Warmup scratch: tail_ ++ block head.
  std::size_t samples_seen_ = 0;
  double inv_window_ = 0.0;      ///< 1 / window, hoisted out of the kernel.
  double sum_threshold_ = 0.0;   ///< threshold * window (pre-scaled compare).
  bool in_burst_ = false;
  std::size_t burst_start_sample_ = 0;
  /// Index of the last above-threshold sample (-1 = none yet).
  std::ptrdiff_t last_above_sample_ = -1;
  double burst_peak_ = 0.0;
  std::vector<DetectedBurst> completed_;

  // Observability (optional).
  PhaseProfiler* profiler_ = nullptr;
  Counter* bursts_counter_ = nullptr;
  Histogram* burst_us_ = nullptr;
};

}  // namespace whitefi
