#include "sift/kernel.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/cpu.h"

namespace whitefi {

namespace {
std::atomic<SiftKernelChoice> g_override{SiftKernelChoice::kAuto};
}  // namespace

void SetSiftKernelOverride(SiftKernelChoice choice) { g_override = choice; }
SiftKernelChoice GetSiftKernelOverride() { return g_override; }

}  // namespace whitefi

namespace whitefi::sift_kernel {

void EmitBurst(const Config& cfg, SiftCoreState& core,
               std::vector<DetectedBurst>& out, std::size_t end_sample) {
  DetectedBurst burst;
  burst.start =
      static_cast<double>(core.burst_start_sample) * cfg.sample_period;
  burst.end = static_cast<double>(std::max(end_sample, core.burst_start_sample)) *
              cfg.sample_period;
  burst.peak_average = core.burst_peak;
  if (burst.end > burst.start) {
    WHITEFI_METRIC_COUNT(cfg.bursts_counter, 1);
    WHITEFI_METRIC_OBSERVE(cfg.burst_us, burst.Duration());
    out.push_back(burst);
  }
}

namespace detail {

std::size_t RunWarmup(const Config& cfg, SiftCoreState& core, Machine& m,
                      const double* tail, std::vector<double>& merged,
                      std::vector<DetectedBurst>& out, const double* x,
                      std::size_t n) {
  const std::size_t window = cfg.window;
  const auto wdiff = static_cast<std::ptrdiff_t>(window);
  const double thr = cfg.threshold;
  const std::size_t base = core.samples_seen;

  // Warmup: the first window-1 samples straddle the previous block (or the
  // pre-stream zeros), so their windows read from tail ++ block.
  const std::size_t warm = std::min(n, window - 1);
  if (warm == 0) return 0;
  merged.resize(window + warm);
  std::copy(tail, tail + window, merged.begin());
  std::copy(x, x + warm, merged.begin() + static_cast<std::ptrdiff_t>(window));
  const double* mg = merged.data();  // mg[j] is global sample base - W + j.
  for (std::size_t i = 0; i < warm; ++i) {
    const double s = x[i];
    const auto g = static_cast<std::ptrdiff_t>(base + i);
    if (s > thr) m.last_above = g;
    const bool gated = g - m.last_above < wdiff;
    if (!m.in_burst && !gated) continue;
    const double* w = mg + i + 1;  // Oldest in-window sample.
    double sum = w[0];
    for (std::size_t k = 1; k < window; ++k) sum += w[k];
    if (!m.in_burst) {
      if (sum > cfg.sum_threshold) {
        m.in_burst = true;
        m.peak = sum * cfg.inv_window;
        const std::size_t first =
            base + i + 1 >= window ? base + i + 1 - window : 0;
        core.burst_start_sample = first;
        for (std::size_t k = 0; k < window; ++k) {
          if (w[k] > thr) {
            core.burst_start_sample = base + i + 1 - window + k;
            break;
          }
        }
      }
    } else {
      const double average = sum * cfg.inv_window;
      if (average > m.peak) m.peak = average;
      if (!(sum > cfg.sum_threshold)) {
        m.in_burst = false;
        core.burst_peak = m.peak;
        EmitBurst(cfg, core, out, static_cast<std::size_t>(m.last_above + 1));
      }
    }
  }
  return warm;
}

void SaveTail(const Config& cfg, double* tail, const double* x,
              std::size_t n) {
  const std::size_t window = cfg.window;
  if (n >= window) {
    std::copy(x + n - window, x + n, tail);
  } else {
    std::copy(tail + n, tail + window, tail);
    std::copy(x, x + n, tail + window - n);
  }
}

namespace {

/// Main-region samples [i0, i1): the window lies entirely inside the
/// block.  KW is the compile-time window length for the unrolled fast
/// path (KW == 0 selects the runtime-window generic path).
///
/// noinline is a measured 1.5x: standalone, each instantiation gets the
/// full jump-threading budget and GCC specializes the loop body per
/// machine state; inlined into RunBlockScalar next to the warmup call it
/// compiles to one generic branchy body.
template <int KW>
__attribute__((noinline)) void MainScalarRange(const Config& cfg,
                                               SiftCoreState& core, Machine& m,
                     std::vector<DetectedBurst>& out, const double* x,
                     std::size_t i0, std::size_t i1) {
  const std::size_t window =
      KW > 0 ? static_cast<std::size_t>(KW) : cfg.window;
  const auto wdiff = static_cast<std::ptrdiff_t>(window);
  const double thr = cfg.threshold;
  const double sum_thr = cfg.sum_threshold;
  const double inv = cfg.inv_window;
  const std::size_t base = core.samples_seen;
  std::ptrdiff_t last_above = m.last_above;
  bool in_burst = m.in_burst;
  double peak = m.peak;

  for (std::size_t i = i0; i < i1; ++i) {
    const double s = x[i];
    const auto g = static_cast<std::ptrdiff_t>(base + i);
    if (s > thr) last_above = g;
    if (!in_burst && g - last_above >= wdiff) {
      // Quiet noise floor.  Every following at-or-below-threshold sample
      // keeps this exact state (last_above fixed, the gate distance only
      // grows), so scan ahead for the next above-threshold sample instead
      // of re-deriving the state per sample; four compares per step keeps
      // the loop-carried work off the critical path.
      while (i + 4 < i1 && !(x[i + 1] > thr) && !(x[i + 2] > thr) &&
             !(x[i + 3] > thr) && !(x[i + 4] > thr)) {
        i += 4;
      }
      while (i + 1 < i1 && !(x[i + 1] > thr)) ++i;
      continue;
    }
    const double* w = x + i + 1 - window;
    double sum;
    if constexpr (KW > 0) {
      sum = w[0];
      for (int k = 1; k < KW; ++k) sum += w[k];  // Fully unrolled.
    } else {
      sum = w[0];
      for (std::size_t k = 1; k < window; ++k) sum += w[k];
    }
    if (!in_burst) {
      if (sum > sum_thr) {
        in_burst = true;
        peak = sum * inv;
        core.burst_start_sample = base + i + 1 - window;
        for (std::size_t k = 0; k < window; ++k) {
          if (w[k] > thr) {
            core.burst_start_sample = base + i + 1 - window + k;
            break;
          }
        }
      }
    } else {
      const double average = sum * inv;
      if (average > peak) peak = average;
      if (!(sum > sum_thr)) {
        in_burst = false;
        core.burst_peak = peak;
        EmitBurst(cfg, core, out, static_cast<std::size_t>(last_above + 1));
      }
    }
  }

  m.last_above = last_above;
  m.in_burst = in_burst;
  m.peak = peak;
}

}  // namespace

void RunMainScalarRange(const Config& cfg, SiftCoreState& core, Machine& m,
                        std::vector<DetectedBurst>& out, const double* x,
                        std::size_t i0, std::size_t i1) {
  MainScalarRange<0>(cfg, core, m, out, x, i0, i1);
}

}  // namespace detail

void RunBlockScalar(const Config& cfg, SiftCoreState& core, double* tail,
                    std::vector<double>& merged,
                    std::vector<DetectedBurst>& out, const double* x,
                    std::size_t n) {
  detail::Machine m{core.last_above_sample, core.in_burst, core.burst_peak};
  const std::size_t warm =
      detail::RunWarmup(cfg, core, m, tail, merged, out, x, n);
  // The paper's 5-sample window gets the unrolled kernel.
  if (cfg.window == 5) {
    detail::MainScalarRange<5>(cfg, core, m, out, x, warm, n);
  } else {
    detail::MainScalarRange<0>(cfg, core, m, out, x, warm, n);
  }
  detail::SaveTail(cfg, tail, x, n);
  core.last_above_sample = m.last_above;
  core.in_burst = m.in_burst;
  core.burst_peak = m.peak;
  core.samples_seen += n;
}

KernelFn Resolve(SiftKernelChoice choice) {
  if (choice == SiftKernelChoice::kAuto) {
    choice = GetSiftKernelOverride();
  }
  if (choice == SiftKernelChoice::kAuto) {
    switch (SiftKernelEnvOverride()) {
      case 1: choice = SiftKernelChoice::kSimd; break;
      case 2: choice = SiftKernelChoice::kScalar; break;
      case 3: choice = SiftKernelChoice::kAvx2; break;
      case 4: choice = SiftKernelChoice::kAvx512; break;
      default: break;
    }
  }
  if (choice == SiftKernelChoice::kAuto &&
      (CpuSupportsAvx512() || CpuSupportsAvx2())) {
    choice = SiftKernelChoice::kSimd;
  }
  if (choice == SiftKernelChoice::kSimd) {
    // "simd" means the widest vector kernel this host can execute.
    if (CpuSupportsAvx512()) {
      choice = SiftKernelChoice::kAvx512;
    } else if (CpuSupportsAvx2()) {
      choice = SiftKernelChoice::kAvx2;
    } else {
      throw std::invalid_argument(
          "SIFT simd kernel requested but AVX2 is not available on this host");
    }
  }
  if (choice == SiftKernelChoice::kAvx512) {
    if (!CpuSupportsAvx512()) {
      throw std::invalid_argument(
          "SIFT avx512 kernel requested but AVX-512F is not available on "
          "this host");
    }
    return RunBlockAvx512;
  }
  if (choice == SiftKernelChoice::kAvx2) {
    if (!CpuSupportsAvx2()) {
      throw std::invalid_argument(
          "SIFT avx2 kernel requested but AVX2 is not available on this host");
    }
    return RunBlockAvx2;
  }
  return RunBlockScalar;
}

const char* KernelName(KernelFn fn) {
  if (fn == RunBlockAvx512) return "simd-avx512";
  if (fn == RunBlockAvx2) return "simd-avx2";
  return "scalar";
}

}  // namespace whitefi::sift_kernel
