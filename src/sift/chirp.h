// Chirp length coding (paper Section 4.3).
//
// A disconnected node signals on the backup channel with "chirps".  The AP
// detects them with SIFT on its secondary radio without retuning its main
// radio.  As the paper's optimization, some information — e.g. the SSID —
// is encoded *in the time domain* by setting the chirp packet's length,
// turning SIFT into a low-bitrate OOK decoder.  That lets the AP ignore
// chirps from clients of other APs without ever switching its main radio.
#pragma once

#include <optional>

#include "sift/detector.h"
#include "util/units.h"

namespace whitefi {

/// Duration-coded chirp alphabet.
struct ChirpCodecParams {
  Us base_duration = 400.0;  ///< Duration encoding id 0 (us).
  Us quantum = 120.0;        ///< Extra duration per id step (us).
  int max_id = 63;           ///< Largest encodable id (6-bit SSID hash).
  /// Decoding tolerance as a fraction of the quantum; must be < 0.5 for
  /// the alphabet to be unambiguous.
  double tolerance = 0.35;
};

/// Encodes/decodes SSID-style identifiers into chirp durations.
class ChirpCodec {
 public:
  explicit ChirpCodec(const ChirpCodecParams& params = {});

  /// Burst duration that encodes `id`.  Throws std::out_of_range for ids
  /// outside [0, max_id].
  Us Encode(int id) const;

  /// Decodes a measured burst duration back to an id; nullopt if the
  /// duration lies outside every symbol's tolerance band.
  std::optional<int> Decode(Us duration) const;

  /// Decodes a SIFT-detected burst.
  std::optional<int> Decode(const DetectedBurst& burst) const;

  /// The configured parameters.
  const ChirpCodecParams& params() const { return params_; }

 private:
  ChirpCodecParams params_;
};

}  // namespace whitefi
