#include "sift/detector.h"

#include <stdexcept>

#include "sift/kernel.h"

namespace whitefi {

namespace {

sift_kernel::KernelFn AsKernel(void* fn) {
  return reinterpret_cast<sift_kernel::KernelFn>(fn);
}

}  // namespace

SiftDetector::SiftDetector(const SiftParams& params) : params_(params) {
  if (params_.window <= 0) throw std::invalid_argument("window must be > 0");
  if (params_.threshold <= 0.0) {
    throw std::invalid_argument("threshold must be > 0");
  }
  const auto window = static_cast<std::size_t>(params_.window);
  tail_.assign(window, 0.0);
  inv_window_ = 1.0 / static_cast<double>(window);
  sum_threshold_ = params_.threshold * static_cast<double>(window);
  kernel_ = reinterpret_cast<void*>(sift_kernel::Resolve(params_.kernel));
}

void SiftDetector::SetObservability(const Observability& obs) {
  profiler_ = obs.profiler;
  if (obs.metrics == nullptr) {
    bursts_counter_ = nullptr;
    burst_us_ = nullptr;
    return;
  }
  bursts_counter_ = &obs.metrics->GetCounter("whitefi.sift.bursts");
  burst_us_ = &obs.metrics->GetHistogram("whitefi.sift.burst_us");
}

void SiftDetector::Step(double sample) { ProcessBlock({&sample, 1}); }

void SiftDetector::ProcessBlock(std::span<const double> samples) {
  ScopedPhaseTimer timer(profiler_, "sift.detect");
  if (samples.empty()) return;
  const sift_kernel::Config cfg{
      .window = tail_.size(),
      .threshold = params_.threshold,
      .sum_threshold = sum_threshold_,
      .inv_window = inv_window_,
      .sample_period = params_.sample_period,
      .bursts_counter = bursts_counter_,
      .burst_us = burst_us_,
  };
  AsKernel(kernel_)(cfg, core_, tail_.data(), merged_, completed_,
                    samples.data(), samples.size());
}

void SiftDetector::Flush() {
  if (core_.in_burst) {
    core_.in_burst = false;
    const sift_kernel::Config cfg{
        .window = tail_.size(),
        .threshold = params_.threshold,
        .sum_threshold = sum_threshold_,
        .inv_window = inv_window_,
        .sample_period = params_.sample_period,
        .bursts_counter = bursts_counter_,
        .burst_us = burst_us_,
    };
    sift_kernel::EmitBurst(cfg, core_, completed_,
                           /*end_sample=*/core_.samples_seen);
  }
}

std::vector<DetectedBurst> SiftDetector::TakeBursts() {
  std::vector<DetectedBurst> out;
  out.swap(completed_);
  return out;
}

std::vector<DetectedBurst> SiftDetector::Detect(
    std::span<const double> samples) {
  ProcessBlock(samples);
  Flush();
  return TakeBursts();
}

const char* SiftDetector::kernel_name() const {
  return sift_kernel::KernelName(AsKernel(kernel_));
}

}  // namespace whitefi
