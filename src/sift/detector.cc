#include "sift/detector.h"

#include <algorithm>
#include <stdexcept>

namespace whitefi {

SiftDetector::SiftDetector(const SiftParams& params) : params_(params) {
  if (params_.window <= 0) throw std::invalid_argument("window must be > 0");
  if (params_.threshold <= 0.0) {
    throw std::invalid_argument("threshold must be > 0");
  }
  const auto window = static_cast<std::size_t>(params_.window);
  tail_.assign(window, 0.0);
  inv_window_ = 1.0 / static_cast<double>(window);
  sum_threshold_ = params_.threshold * static_cast<double>(window);
}

void SiftDetector::SetObservability(const Observability& obs) {
  profiler_ = obs.profiler;
  if (obs.metrics == nullptr) {
    bursts_counter_ = nullptr;
    burst_us_ = nullptr;
    return;
  }
  bursts_counter_ = &obs.metrics->GetCounter("whitefi.sift.bursts");
  burst_us_ = &obs.metrics->GetHistogram("whitefi.sift.burst_us");
}

void SiftDetector::Step(double sample) { ProcessBlock({&sample, 1}); }

void SiftDetector::EmitBurst(std::size_t end_sample) {
  DetectedBurst burst;
  burst.start =
      static_cast<double>(burst_start_sample_) * params_.sample_period;
  burst.end = static_cast<double>(std::max(end_sample, burst_start_sample_)) *
              params_.sample_period;
  burst.peak_average = burst_peak_;
  if (burst.end > burst.start) {
    WHITEFI_METRIC_COUNT(bursts_counter_, 1);
    WHITEFI_METRIC_OBSERVE(burst_us_, burst.Duration());
    completed_.push_back(burst);
  }
}

// The kernel processes one block against the detector's streaming state.
//
// Every per-sample quantity is defined chunking-independently so any split
// of a trace into blocks is byte-identical to any other:
//   * the window sum at global sample g is the left-associated sum, oldest
//     first, of the W chronological samples ending at g (virtual zeros
//     before the stream start);
//   * a burst opens at g when some sample in that window exceeds the
//     threshold AND sum > threshold * W, and dates its start at the oldest
//     above-threshold sample still in the window (a strong burst trips the
//     average from its very first sample, so the naive "window start"
//     would bias starts early, and SIFS gaps short, by several samples);
//   * a burst closes at the first g with sum <= threshold * W and ends at
//     the sample after the last above-threshold one.
//
// The "some sample above threshold" gate is what makes the noise floor
// cheap: out of a burst, a sample more than one window length past the
// last above-threshold sample cannot trip the average (every window sample
// is at or below the threshold), so the kernel skips the sum entirely —
// one compare per quiet sample.
template <int KW>
void SiftDetector::RunBlock(const double* x, std::size_t n) {
  const std::size_t window =
      KW > 0 ? static_cast<std::size_t>(KW) : tail_.size();
  const auto wdiff = static_cast<std::ptrdiff_t>(window);
  const double thr = params_.threshold;
  const double sum_thr = sum_threshold_;
  const double inv = inv_window_;
  const std::size_t base = samples_seen_;
  std::ptrdiff_t last_above = last_above_sample_;
  bool in_burst = in_burst_;
  double peak = burst_peak_;

  // Warmup: the first window-1 samples straddle the previous block (or the
  // pre-stream zeros), so their windows read from tail_ ++ block.
  const std::size_t warm = std::min(n, window - 1);
  if (warm > 0) {
    merged_.resize(window + warm);
    std::copy(tail_.begin(), tail_.end(), merged_.begin());
    std::copy(x, x + warm, merged_.begin() + static_cast<std::ptrdiff_t>(window));
    const double* m = merged_.data();  // m[j] is global sample base - W + j.
    for (std::size_t i = 0; i < warm; ++i) {
      const double s = x[i];
      const auto g = static_cast<std::ptrdiff_t>(base + i);
      if (s > thr) last_above = g;
      const bool gated = g - last_above < wdiff;
      if (!in_burst && !gated) continue;
      const double* w = m + i + 1;  // Oldest in-window sample.
      double sum = w[0];
      for (std::size_t k = 1; k < window; ++k) sum += w[k];
      if (!in_burst) {
        if (sum > sum_thr) {
          in_burst = true;
          peak = sum * inv;
          const std::size_t first =
              base + i + 1 >= window ? base + i + 1 - window : 0;
          burst_start_sample_ = first;
          for (std::size_t k = 0; k < window; ++k) {
            if (w[k] > thr) {
              burst_start_sample_ = base + i + 1 - window + k;
              break;
            }
          }
        }
      } else {
        const double average = sum * inv;
        if (average > peak) peak = average;
        if (!(sum > sum_thr)) {
          in_burst = false;
          burst_peak_ = peak;
          EmitBurst(static_cast<std::size_t>(last_above + 1));
        }
      }
    }
  }

  // Main region: the window lies entirely inside the block.
  for (std::size_t i = warm; i < n; ++i) {
    const double s = x[i];
    const auto g = static_cast<std::ptrdiff_t>(base + i);
    if (s > thr) last_above = g;
    if (!in_burst && g - last_above >= wdiff) continue;  // Quiet noise floor.
    const double* w = x + i + 1 - window;
    double sum;
    if constexpr (KW > 0) {
      sum = w[0];
      for (int k = 1; k < KW; ++k) sum += w[k];  // Fully unrolled.
    } else {
      sum = w[0];
      for (std::size_t k = 1; k < window; ++k) sum += w[k];
    }
    if (!in_burst) {
      if (sum > sum_thr) {
        in_burst = true;
        peak = sum * inv;
        burst_start_sample_ = base + i + 1 - window;
        for (std::size_t k = 0; k < window; ++k) {
          if (w[k] > thr) {
            burst_start_sample_ = base + i + 1 - window + k;
            break;
          }
        }
      }
    } else {
      const double average = sum * inv;
      if (average > peak) peak = average;
      if (!(sum > sum_thr)) {
        in_burst = false;
        burst_peak_ = peak;
        EmitBurst(static_cast<std::size_t>(last_above + 1));
      }
    }
  }

  // Persist the streaming state and the chronological tail for the next
  // block's warmup windows.
  last_above_sample_ = last_above;
  in_burst_ = in_burst;
  burst_peak_ = peak;
  if (n >= window) {
    std::copy(x + n - window, x + n, tail_.begin());
  } else {
    std::copy(tail_.begin() + static_cast<std::ptrdiff_t>(n), tail_.end(),
              tail_.begin());
    std::copy(x, x + n, tail_.end() - static_cast<std::ptrdiff_t>(n));
  }
  samples_seen_ = base + n;
}

void SiftDetector::ProcessBlock(std::span<const double> samples) {
  ScopedPhaseTimer timer(profiler_, "sift.detect");
  if (samples.empty()) return;
  // The paper's 5-sample window gets the unrolled kernel.
  if (tail_.size() == 5) {
    RunBlock<5>(samples.data(), samples.size());
  } else {
    RunBlock<0>(samples.data(), samples.size());
  }
}

void SiftDetector::Flush() {
  if (in_burst_) {
    in_burst_ = false;
    EmitBurst(/*end_sample=*/samples_seen_);
  }
}

std::vector<DetectedBurst> SiftDetector::TakeBursts() {
  std::vector<DetectedBurst> out;
  out.swap(completed_);
  return out;
}

std::vector<DetectedBurst> SiftDetector::Detect(
    std::span<const double> samples) {
  ProcessBlock(samples);
  Flush();
  return TakeBursts();
}

}  // namespace whitefi
