#include "sift/detector.h"

#include <algorithm>
#include <stdexcept>

namespace whitefi {

SiftDetector::SiftDetector(const SiftParams& params) : params_(params) {
  if (params_.window <= 0) throw std::invalid_argument("window must be > 0");
  if (params_.threshold <= 0.0) {
    throw std::invalid_argument("threshold must be > 0");
  }
  window_.assign(static_cast<std::size_t>(params_.window), 0.0);
}

void SiftDetector::SetObservability(const Observability& obs) {
  profiler_ = obs.profiler;
  if (obs.metrics == nullptr) {
    bursts_counter_ = nullptr;
    burst_us_ = nullptr;
    return;
  }
  bursts_counter_ = &obs.metrics->GetCounter("whitefi.sift.bursts");
  burst_us_ = &obs.metrics->GetHistogram("whitefi.sift.burst_us");
}

void SiftDetector::Step(double sample) {
  // Slide the window.
  window_sum_ -= window_[window_pos_];
  window_[window_pos_] = sample;
  window_sum_ += sample;
  window_pos_ = (window_pos_ + 1) % window_.size();
  ++samples_seen_;
  if (sample > params_.threshold) last_above_sample_ = samples_seen_ - 1;

  const double average = window_sum_ / static_cast<double>(window_.size());
  if (!in_burst_) {
    if (average > params_.threshold) {
      in_burst_ = true;
      burst_peak_ = average;
      // Date the start at the oldest in-window sample that exceeds the
      // threshold: a strong burst trips the average from its very first
      // sample, so the naive "window start" would bias starts early (and
      // SIFS gaps short) by several samples.
      const std::size_t window_first =
          samples_seen_ >= window_.size() ? samples_seen_ - window_.size() : 0;
      burst_start_sample_ = window_first;
      for (std::size_t k = 0; k < window_.size() && k < samples_seen_; ++k) {
        const std::size_t idx =
            (window_pos_ + k) % window_.size();  // oldest-first traversal
        if (window_[idx] > params_.threshold) {
          burst_start_sample_ = window_first + k;
          break;
        }
      }
    }
  } else {
    burst_peak_ = std::max(burst_peak_, average);
    if (average <= params_.threshold) {
      in_burst_ = false;
      EmitBurst(/*end_sample=*/last_above_sample_ + 1);
    }
  }
}

void SiftDetector::EmitBurst(std::size_t end_sample) {
  DetectedBurst burst;
  burst.start =
      static_cast<double>(burst_start_sample_) * params_.sample_period;
  burst.end = static_cast<double>(std::max(end_sample, burst_start_sample_)) *
              params_.sample_period;
  burst.peak_average = burst_peak_;
  if (burst.end > burst.start) {
    WHITEFI_METRIC_COUNT(bursts_counter_, 1);
    WHITEFI_METRIC_OBSERVE(burst_us_, burst.Duration());
    completed_.push_back(burst);
  }
}

void SiftDetector::ProcessBlock(std::span<const double> samples) {
  ScopedPhaseTimer timer(profiler_, "sift.detect");
  for (double s : samples) Step(s);
}

void SiftDetector::Flush() {
  if (in_burst_) {
    in_burst_ = false;
    EmitBurst(/*end_sample=*/samples_seen_);
  }
}

std::vector<DetectedBurst> SiftDetector::TakeBursts() {
  std::vector<DetectedBurst> out;
  out.swap(completed_);
  return out;
}

std::vector<DetectedBurst> SiftDetector::Detect(
    std::span<const double> samples) {
  ProcessBlock(samples);
  Flush();
  return TakeBursts();
}

}  // namespace whitefi
