// Airtime utilization measurement via SIFT (paper Sections 4.1 and 5.1).
//
// WhiteFi's spectrum-assignment metric needs, per UHF channel, the busy
// airtime fraction A_c and an estimate B_c of the number of other APs
// operating there.  Both come from the scanner: SIFT's detected bursts
// over a dwell window directly give the busy fraction, and the matched
// exchanges can be clustered into distinct transmitters.
#pragma once

#include <vector>

#include "sift/detector.h"
#include "sift/matcher.h"
#include "util/units.h"

namespace whitefi {

/// Fraction of `window` occupied by detected bursts, clamped to [0, 1].
/// Bursts are clipped to [window_start, window_start + window).
double BusyAirtimeFraction(const std::vector<DetectedBurst>& bursts,
                           Us window_start, Us window);

/// Total on-air time of the bursts (us).
Us TotalBurstAirtime(const std::vector<DetectedBurst>& bursts);

/// Per-UHF-channel observation used by the MCham metric.
struct ChannelObservation {
  double airtime = 0.0;  ///< Busy fraction A_c in [0, 1].
  int ap_count = 0;      ///< Estimated number of other APs, B_c.
  bool incumbent = false;  ///< Incumbent detected on this channel.
};

/// A node's full view of the band: one observation per UHF channel.
using BandObservation = std::vector<ChannelObservation>;

/// Returns a BandObservation with all channels idle and incumbent-free.
BandObservation EmptyBandObservation();

}  // namespace whitefi
