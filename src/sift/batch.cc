#include "sift/batch.h"

#include <algorithm>
#include <stdexcept>

#include "sift/kernel.h"

namespace whitefi {

namespace {

sift_kernel::KernelFn AsKernel(void* fn) {
  return reinterpret_cast<sift_kernel::KernelFn>(fn);
}

}  // namespace

SiftBatch::SiftBatch(const SiftParams& params, std::size_t lanes)
    : params_(params) {
  if (params_.window <= 0) throw std::invalid_argument("window must be > 0");
  if (params_.threshold <= 0.0) {
    throw std::invalid_argument("threshold must be > 0");
  }
  if (lanes == 0) throw std::invalid_argument("lanes must be > 0");
  window_ = static_cast<std::size_t>(params_.window);
  inv_window_ = 1.0 / static_cast<double>(window_);
  sum_threshold_ = params_.threshold * static_cast<double>(window_);
  kernel_ = reinterpret_cast<void*>(sift_kernel::Resolve(params_.kernel));
  cores_.resize(lanes);
  tails_.assign(lanes * window_, 0.0);
  completed_.resize(lanes);
}

void SiftBatch::SetObservability(const Observability& obs) {
  profiler_ = obs.profiler;
  if (obs.metrics == nullptr) {
    bursts_counter_ = nullptr;
    burst_us_ = nullptr;
    return;
  }
  bursts_counter_ = &obs.metrics->GetCounter("whitefi.sift.bursts");
  burst_us_ = &obs.metrics->GetHistogram("whitefi.sift.burst_us");
}

void SiftBatch::ProcessBlock(std::size_t lane,
                             std::span<const double> samples) {
  ScopedPhaseTimer timer(profiler_, "sift.detect");
  if (samples.empty()) return;
  const sift_kernel::Config cfg{
      .window = window_,
      .threshold = params_.threshold,
      .sum_threshold = sum_threshold_,
      .inv_window = inv_window_,
      .sample_period = params_.sample_period,
      .bursts_counter = bursts_counter_,
      .burst_us = burst_us_,
  };
  AsKernel(kernel_)(cfg, cores_.at(lane), tails_.data() + lane * window_,
                    merged_, completed_[lane], samples.data(), samples.size());
}

void SiftBatch::ProcessBlocks(std::span<const std::span<const double>> blocks) {
  ScopedPhaseTimer timer(profiler_, "sift.detect");
  const sift_kernel::Config cfg{
      .window = window_,
      .threshold = params_.threshold,
      .sum_threshold = sum_threshold_,
      .inv_window = inv_window_,
      .sample_period = params_.sample_period,
      .bursts_counter = bursts_counter_,
      .burst_us = burst_us_,
  };
  const auto kernel = AsKernel(kernel_);
  const std::size_t n = std::min(blocks.size(), cores_.size());
  for (std::size_t lane = 0; lane < n; ++lane) {
    if (blocks[lane].empty()) continue;
    kernel(cfg, cores_[lane], tails_.data() + lane * window_, merged_,
           completed_[lane], blocks[lane].data(), blocks[lane].size());
  }
}

void SiftBatch::Flush(std::size_t lane) {
  SiftCoreState& core = cores_.at(lane);
  if (!core.in_burst) return;
  core.in_burst = false;
  const sift_kernel::Config cfg{
      .window = window_,
      .threshold = params_.threshold,
      .sum_threshold = sum_threshold_,
      .inv_window = inv_window_,
      .sample_period = params_.sample_period,
      .bursts_counter = bursts_counter_,
      .burst_us = burst_us_,
  };
  sift_kernel::EmitBurst(cfg, core, completed_[lane],
                         /*end_sample=*/core.samples_seen);
}

void SiftBatch::FlushAll() {
  for (std::size_t lane = 0; lane < cores_.size(); ++lane) Flush(lane);
}

std::vector<DetectedBurst> SiftBatch::TakeBursts(std::size_t lane) {
  std::vector<DetectedBurst> out;
  out.swap(completed_.at(lane));
  return out;
}

std::vector<std::vector<DetectedBurst>> SiftBatch::DetectAll(
    std::span<const std::span<const double>> traces) {
  ProcessBlocks(traces);
  std::vector<std::vector<DetectedBurst>> out;
  const std::size_t n = std::min(traces.size(), cores_.size());
  out.reserve(n);
  for (std::size_t lane = 0; lane < n; ++lane) {
    Flush(lane);
    out.push_back(TakeBursts(lane));
  }
  return out;
}

void SiftBatch::Reset() {
  for (auto& core : cores_) core = SiftCoreState{};
  tails_.assign(tails_.size(), 0.0);
  for (auto& lane : completed_) lane.clear();
}

void SiftBatch::ResetLane(std::size_t lane) {
  cores_.at(lane) = SiftCoreState{};
  std::fill(tails_.begin() + static_cast<std::ptrdiff_t>(lane * window_),
            tails_.begin() + static_cast<std::ptrdiff_t>((lane + 1) * window_),
            0.0);
  completed_.at(lane).clear();
}

const char* SiftBatch::kernel_name() const {
  return sift_kernel::KernelName(AsKernel(kernel_));
}

}  // namespace whitefi
